//! The named-metric registry: register once (a lock), record forever
//! (atomics on the returned `Arc` handle), render on demand.
//!
//! # Naming
//!
//! Names are Prometheus-style: a bare base (`avt_requests_total`) or a
//! base plus a label set (`avt_stage_us{op="core",stage="queue"}`). The
//! full string is the registry key; rendering splits it so `# TYPE`
//! lines appear once per base and histogram quantile series can splice a
//! `quantile` label into the set.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::hist::Histogram;

/// A monotone counter.
#[derive(Debug, Default)]
pub struct Counter(std::sync::atomic::AtomicU64);

impl Counter {
    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// A last-write-wins gauge.
#[derive(Debug, Default)]
pub struct Gauge(std::sync::atomic::AtomicU64);

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, std::sync::atomic::Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// One registered metric, by kind.
#[derive(Clone)]
pub enum Metric {
    /// A monotone counter.
    Counter(Arc<Counter>),
    /// A last-write-wins gauge.
    Gauge(Arc<Gauge>),
    /// A log-bucketed histogram.
    Histogram(Arc<Histogram>),
}

/// The registry: a name → metric table. Registration is idempotent —
/// asking for an existing name returns the existing handle, so hot paths
/// can resolve handles once at startup and share them.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry the serving stack records into.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// The counter named `name`, registering it on first use. A name
    /// already registered as a different kind yields a detached handle
    /// (recorded values go nowhere) rather than a panic — a name
    /// collision is a bug, but not one worth crashing a server over.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => Arc::new(Counter::default()),
        }
    }

    /// The gauge named `name`, registering it on first use (same
    /// collision policy as [`Registry::counter`]).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => Arc::new(Gauge::default()),
        }
    }

    /// The histogram named `name`, registering it on first use (same
    /// collision policy as [`Registry::counter`]).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut metrics = self.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => Arc::new(Histogram::new()),
        }
    }

    /// All registered metrics, by name (a point-in-time clone of the
    /// handle table; values are read when the caller reads them).
    pub fn metrics(&self) -> Vec<(String, Metric)> {
        self.lock().iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    /// Prometheus-style text exposition of the whole registry: counters
    /// and gauges as single samples, histograms as summaries (`quantile`
    /// series plus `_count` and `_sum`). Deterministic order (sorted by
    /// name), one trailing newline per line.
    pub fn render(&self) -> String {
        let metrics = self.metrics();
        let mut out = String::new();
        let mut typed: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for (name, metric) in &metrics {
            let (base, labels) = split_name(name);
            if typed.insert(base.to_string()) {
                let kind = match metric {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram(_) => "summary",
                };
                out.push_str(&format!("# TYPE {base} {kind}\n"));
            }
            match metric {
                Metric::Counter(c) => out.push_str(&format!("{name} {}\n", c.get())),
                Metric::Gauge(g) => out.push_str(&format!("{name} {}\n", g.get())),
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    for (q, p) in [("0.5", 50.0), ("0.9", 90.0), ("0.99", 99.0)] {
                        if let Some(v) = s.percentile(p) {
                            let series = with_label(base, labels, &format!("quantile=\"{q}\""));
                            out.push_str(&format!("{series} {v}\n"));
                        }
                    }
                    let count = labeled(&format!("{base}_count"), labels);
                    let sum = labeled(&format!("{base}_sum"), labels);
                    out.push_str(&format!("{count} {}\n", s.count()));
                    out.push_str(&format!("{sum} {}\n", s.sum));
                }
            }
        }
        out
    }
}

impl Registry {
    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.metrics.lock().expect("metric registry lock poisoned")
    }
}

/// Split `avt_x{a="b"}` into (`avt_x`, `a="b"`); a bare name has empty
/// labels.
fn split_name(name: &str) -> (&str, &str) {
    match name.split_once('{') {
        Some((base, rest)) => (base, rest.strip_suffix('}').unwrap_or(rest)),
        None => (name, ""),
    }
}

/// `base{labels}`, or bare `base` when `labels` is empty.
fn labeled(base: &str, labels: &str) -> String {
    if labels.is_empty() {
        base.to_string()
    } else {
        format!("{base}{{{labels}}}")
    }
}

/// `base{labels,extra}` with the comma elided when `labels` is empty.
fn with_label(base: &str, labels: &str, extra: &str) -> String {
    if labels.is_empty() {
        format!("{base}{{{extra}}}")
    } else {
        format!("{base}{{{labels},{extra}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_and_persistent() {
        let r = Registry::new();
        let a = r.counter("hits");
        let b = r.counter("hits");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("hits").get(), 3);
        assert_eq!(r.metrics().len(), 1);
    }

    #[test]
    fn kind_collisions_yield_detached_handles() {
        let r = Registry::new();
        r.counter("x").inc();
        // Asking for `x` as a gauge must not clobber the counter.
        r.gauge("x").set(99);
        assert_eq!(r.counter("x").get(), 1);
        assert!(r.render().contains("x 1\n"));
    }

    #[test]
    fn render_is_deterministic_prometheus_text() {
        let r = Registry::new();
        r.counter("avt_requests_total").add(7);
        r.gauge("avt_inflight").set(3);
        let h = r.histogram("avt_stage_us{op=\"core\",stage=\"queue\"}");
        for v in 1..=100u64 {
            h.record(v);
        }
        let text = r.render();
        assert!(text.contains("# TYPE avt_requests_total counter\n"));
        assert!(text.contains("avt_requests_total 7\n"));
        assert!(text.contains("avt_inflight 3\n"));
        assert!(text.contains("# TYPE avt_stage_us summary\n"));
        assert!(text.contains("avt_stage_us{op=\"core\",stage=\"queue\",quantile=\"0.5\"}"));
        assert!(text.contains("avt_stage_us_count{op=\"core\",stage=\"queue\"} 100\n"));
        assert!(text.contains("avt_stage_us_sum{op=\"core\",stage=\"queue\"} 5050\n"));
        // Deterministic: two renders are byte-identical.
        assert_eq!(text, r.render());
    }

    #[test]
    fn empty_histograms_render_count_zero_and_no_quantiles() {
        let r = Registry::new();
        r.histogram("quiet_us");
        let text = r.render();
        assert!(text.contains("quiet_us_count 0\n"));
        assert!(!text.contains("quantile"));
    }
}
