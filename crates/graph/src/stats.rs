//! Dataset statistics (Table 2 of the paper).

use crate::{GraphView, VertexId};

/// Summary statistics for one graph snapshot, mirroring the columns of the
/// paper's Table 2 plus a few structural extras used in tests and the
/// experiment harness.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub nodes: usize,
    /// Number of edges.
    pub edges: usize,
    /// Average degree `2m/n`.
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Number of isolated (degree-0) vertices.
    pub isolated: usize,
    /// Number of connected components (isolated vertices each count as one).
    pub components: usize,
    /// Size of the largest connected component.
    pub largest_component: usize,
}

impl GraphStats {
    /// Compute statistics for `graph` (any substrate). O(n + m).
    pub fn compute<G: GraphView>(graph: &G) -> GraphStats {
        let n = graph.num_vertices();
        let mut seen = vec![false; n];
        let mut components = 0usize;
        let mut largest = 0usize;
        let mut stack: Vec<VertexId> = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            components += 1;
            seen[start] = true;
            stack.push(start as VertexId);
            let mut size = 0usize;
            while let Some(u) = stack.pop() {
                size += 1;
                for &w in graph.neighbors(u) {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        stack.push(w);
                    }
                }
            }
            largest = largest.max(size);
        }
        GraphStats {
            nodes: n,
            edges: graph.num_edges(),
            avg_degree: graph.avg_degree(),
            max_degree: graph.max_degree(),
            isolated: graph.vertices().filter(|&v| graph.degree(v) == 0).count(),
            components,
            largest_component: largest,
        }
    }

    /// One row of a Table-2 style report.
    pub fn table_row(&self, name: &str) -> String {
        format!(
            "{name:<16} {:>9} {:>10} {:>7.2} {:>8} {:>8}",
            self.nodes, self.edges, self.avg_degree, self.max_degree, self.components
        )
    }
}

/// Degree histogram: `hist[d]` = number of vertices with degree `d`.
pub fn degree_histogram<G: GraphView>(graph: &G) -> Vec<usize> {
    let mut hist = vec![0usize; graph.max_degree() + 1];
    for v in graph.vertices() {
        hist[graph.degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CsrGraph, Graph};

    #[test]
    fn stats_agree_across_substrates() {
        let g = Graph::from_edges(7, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(GraphStats::compute(&g), GraphStats::compute(&csr));
        assert_eq!(degree_histogram(&g), degree_histogram(&csr));
    }

    #[test]
    fn stats_of_two_triangles_and_isolate() {
        // vertices 0-2 triangle, 3-5 triangle, 6 isolated
        let g = Graph::from_edges(7, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 7);
        assert_eq!(s.edges, 6);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.isolated, 1);
        assert_eq!(s.components, 3);
        assert_eq!(s.largest_component, 3);
        assert!((s.avg_degree - 12.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_graph() {
        let s = GraphStats::compute(&Graph::new(0));
        assert_eq!(s.nodes, 0);
        assert_eq!(s.components, 0);
        assert_eq!(s.largest_component, 0);
    }

    #[test]
    fn degree_histogram_star() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let hist = degree_histogram(&g);
        assert_eq!(hist, vec![0, 4, 0, 0, 1]);
    }

    #[test]
    fn table_row_contains_counts() {
        let g = Graph::from_edges(3, [(0, 1)]).unwrap();
        let row = GraphStats::compute(&g).table_row("tiny");
        assert!(row.contains("tiny"));
        assert!(row.contains('3'));
    }
}
