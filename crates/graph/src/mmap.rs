//! Zero-copy CSR snapshots over memory-mapped `.csrbin` files.
//!
//! [`MmapCsr`] implements [`GraphView`] directly on the bytes of a
//! `.csrbin` file (layout in [`crate::io`]): the kernel maps the file,
//! `offsets`/`targets` are read *in place* as `&[u64]` / `&[u32]` slices
//! into the mapping, and no adjacency structure is ever rebuilt in heap
//! memory. Resident cost is whatever pages the queries actually touch —
//! the page cache, managed by the OS — which is what lets full-size SNAP
//! frames flow through the execution engine on machines whose RAM cannot
//! hold `T` resident [`CsrGraph`]s.
//!
//! The whole file is validated once on [`MmapCsr::open`] (magic, version,
//! exact length, offset monotonicity, target bounds, per-vertex sortedness)
//! so every later query can index and binary-search without re-checking;
//! after that the type is a plain read-only [`GraphView`] with exactly
//! [`CsrGraph`]'s query semantics — same neighbour order, same tie-breaks —
//! which is what makes engine runs over mmap'd frames bit-identical to
//! resident runs.
//!
//! # Platform notes
//!
//! On 64-bit Unix the mapping is a real `mmap(2)` (via the `libc` the Rust
//! runtime already links — no external crate). Elsewhere the file is read
//! into an owned 8-byte-aligned buffer: the same API and validation, just
//! not zero-copy. Big-endian hosts are refused (the format is
//! little-endian, see [`crate::io`]). The file must not be truncated or
//! rewritten while mapped — the usual `mmap` contract; the frame caches
//! written by `avt-datasets` are write-once.

use std::fs::File;
use std::path::Path;

use crate::io::{CSRBIN_HEADER_BYTES, CSRBIN_MAGIC, CSRBIN_VERSION};
use crate::{GraphError, GraphView, VertexId};

fn format_err(path: &Path, message: impl std::fmt::Display) -> GraphError {
    GraphError::Parse { line: 0, message: format!("{}: {message}", path.display()) }
}

/// The bytes backing an [`MmapCsr`]: a real file mapping where the platform
/// supports it, an owned aligned buffer otherwise. Both expose the file
/// image as one `&[u8]` whose offset 24 is 8-byte aligned (mappings are
/// page-aligned; the owned buffer is a `Vec<u64>`).
enum Backing {
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped { ptr: std::ptr::NonNull<u8>, len: usize },
    /// Owned fallback; the extra `usize` is the byte length (the `Vec<u64>`
    /// rounds up to whole words).
    #[cfg_attr(all(unix, target_pointer_width = "64"), allow(dead_code))]
    Owned(Vec<u64>, usize),
}

impl Backing {
    #[inline]
    fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(all(unix, target_pointer_width = "64"))]
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes, unmapped only in Drop.
            Backing::Mapped { ptr, len } => unsafe {
                std::slice::from_raw_parts(ptr.as_ptr(), *len)
            },
            Backing::Owned(words, len) => {
                // SAFETY: the Vec owns `words.len() * 8 >= *len` initialized
                // bytes; reinterpreting u64s as bytes is always valid.
                unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), *len) }
            }
        }
    }

    /// Read `file` into an owned 8-byte-aligned buffer (the non-mmap path).
    fn read_owned(file: &mut File, len: usize, path: &Path) -> Result<Backing, GraphError> {
        use std::io::Read;
        let mut words = vec![0u64; len.div_ceil(8)];
        // SAFETY: the Vec owns `words.len() * 8` initialized bytes; we
        // borrow them mutably as bytes for the read.
        let bytes = unsafe {
            std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), words.len() * 8)
        };
        file.read_exact(&mut bytes[..len]).map_err(|e| format_err(path, format!("read: {e}")))?;
        Ok(Backing::Owned(words, len))
    }
}

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    //! The two syscalls we need, bound directly: `std` already links the
    //! platform libc, so no external crate is required. 64-bit only (the
    //! `off_t` ABI differs on 32-bit targets; those take the owned-read
    //! fallback).
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> c_int;
    }

    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }
}

#[cfg(all(unix, target_pointer_width = "64"))]
fn map_file(file: &mut File, len: usize, path: &Path) -> Result<Backing, GraphError> {
    use std::os::unix::io::AsRawFd;
    // SAFETY: fd is a live, readable file descriptor; len > 0 is checked by
    // the caller (the header alone is 24 bytes). A PROT_READ | MAP_PRIVATE
    // mapping of a regular file has no aliasing hazards from this process;
    // the pointer and length are kept together and unmapped exactly once.
    let ptr = unsafe {
        sys::mmap(std::ptr::null_mut(), len, sys::PROT_READ, sys::MAP_PRIVATE, file.as_raw_fd(), 0)
    };
    if ptr == sys::map_failed() || ptr.is_null() {
        // Rare (e.g. a pseudo-file that cannot be mapped): fall back to an
        // owned read so open still succeeds where possible.
        return Backing::read_owned(file, len, path);
    }
    Ok(Backing::Mapped {
        ptr: std::ptr::NonNull::new(ptr.cast::<u8>()).expect("mmap success is non-null"),
        len,
    })
}

impl Drop for Backing {
    fn drop(&mut self) {
        #[cfg(all(unix, target_pointer_width = "64"))]
        if let Backing::Mapped { ptr, len } = self {
            // SAFETY: this pair came from a successful mmap and is dropped
            // exactly once; no slice borrowed from it can outlive `self`.
            unsafe {
                sys::munmap(ptr.as_ptr().cast(), *len);
            }
        }
    }
}

/// An immutable CSR snapshot read in place from a mapped `.csrbin` file.
///
/// Query-for-query identical to [`crate::CsrGraph`] (sorted neighbour
/// slices, binary-search membership probes) without ever materializing the
/// arrays into process memory. See the module docs for the contract.
///
/// # Example
///
/// ```no_run
/// use avt_graph::{io, CsrGraph, GraphView, MmapCsr};
///
/// let csr = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 0)]).unwrap();
/// io::write_csrbin_file(&csr, "frame.csrbin".as_ref()).unwrap();
/// let mapped = MmapCsr::open("frame.csrbin".as_ref()).unwrap();
/// assert_eq!(mapped.neighbors(1), csr.neighbors(1));
/// assert!(mapped.has_edge(2, 0));
/// ```
pub struct MmapCsr {
    backing: Backing,
    n: usize,
    m: usize,
}

// SAFETY: the backing bytes are immutable for the lifetime of the value
// (PROT_READ mapping or owned buffer, never written after open), so shared
// references can move and be used across threads freely. The raw pointer
// only exists because a mapping is not a Rust allocation.
unsafe impl Send for MmapCsr {}
unsafe impl Sync for MmapCsr {}

impl MmapCsr {
    /// Map `path` and validate it as a `.csrbin` file.
    ///
    /// Validation is one full pass (header, exact file length, offset
    /// monotonicity, target bounds, sortedness, no self-loops) so that
    /// every subsequent query can trust the structure. Corrupt or
    /// truncated files, unknown versions, and big-endian hosts are
    /// rejected with a [`GraphError::Parse`].
    pub fn open(path: &Path) -> Result<MmapCsr, GraphError> {
        if cfg!(target_endian = "big") {
            return Err(format_err(path, ".csrbin is little-endian; big-endian hosts unsupported"));
        }
        let mut file =
            File::open(path).map_err(|e| format_err(path, format!("cannot open: {e}")))?;
        let len = file
            .metadata()
            .map_err(|e| format_err(path, format!("cannot stat: {e}")))?
            .len()
            .try_into()
            .map_err(|_| format_err(path, "file too large for this address space"))?;
        if len < CSRBIN_HEADER_BYTES {
            return Err(format_err(path, format!("{len} bytes is shorter than the header")));
        }
        #[cfg(all(unix, target_pointer_width = "64"))]
        let backing = map_file(&mut file, len, path)?;
        #[cfg(not(all(unix, target_pointer_width = "64")))]
        let backing = Backing::read_owned(&mut file, len, path)?;

        let (n, m) = validate(backing.bytes(), path)?;
        Ok(MmapCsr { backing, n, m })
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// The offset array, in place in the mapping (`n + 1` entries).
    #[inline]
    fn offsets(&self) -> &[u64] {
        let bytes = self.backing.bytes();
        // SAFETY: validate() proved the file holds n + 1 u64s at byte 24;
        // the mapping is page-aligned (owned buffer: 8-aligned), so
        // 24-byte offset keeps 8-byte alignment. Lifetime is tied to &self.
        unsafe {
            std::slice::from_raw_parts(
                bytes.as_ptr().add(CSRBIN_HEADER_BYTES).cast::<u64>(),
                self.n + 1,
            )
        }
    }

    /// The concatenated neighbour array, in place in the mapping.
    #[inline]
    fn targets(&self) -> &[VertexId] {
        let bytes = self.backing.bytes();
        let start = CSRBIN_HEADER_BYTES + 8 * (self.n + 1);
        // SAFETY: validate() proved the file holds 2m u32s at `start`,
        // which is 4-aligned in a page-aligned (or 8-aligned) buffer.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr().add(start).cast::<u32>(), 2 * self.m) }
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        let offsets = self.offsets();
        (offsets[u as usize + 1] - offsets[u as usize]) as usize
    }

    /// The neighbours of `u`, sorted ascending (same order as
    /// [`crate::CsrGraph::neighbors`]).
    #[inline]
    pub fn neighbors(&self, u: VertexId) -> &[VertexId] {
        let offsets = self.offsets();
        &self.targets()[offsets[u as usize] as usize..offsets[u as usize + 1] as usize]
    }

    /// True when edge `(u, v)` is present; false for self-loops and
    /// out-of-range endpoints. Binary search on the shorter sorted list,
    /// exactly like [`crate::CsrGraph::has_edge`].
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v || u as usize >= self.n || v as usize >= self.n {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Maximum degree over all vertices (0 for an edgeless graph).
    pub fn max_degree(&self) -> usize {
        self.offsets().windows(2).map(|w| (w[1] - w[0]) as usize).max().unwrap_or(0)
    }
}

impl std::fmt::Debug for MmapCsr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapCsr").field("n", &self.n).field("m", &self.m).finish_non_exhaustive()
    }
}

impl GraphView for MmapCsr {
    #[inline]
    fn num_vertices(&self) -> usize {
        MmapCsr::num_vertices(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        MmapCsr::num_edges(self)
    }

    #[inline]
    fn neighbors(&self, u: VertexId) -> &[VertexId] {
        MmapCsr::neighbors(self, u)
    }

    #[inline]
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        MmapCsr::has_edge(self, u, v)
    }

    #[inline]
    fn degree(&self, u: VertexId) -> usize {
        MmapCsr::degree(self, u)
    }

    fn max_degree(&self) -> usize {
        MmapCsr::max_degree(self)
    }
}

/// One structural pass over a candidate `.csrbin` image. Returns `(n, m)`.
fn validate(bytes: &[u8], path: &Path) -> Result<(usize, usize), GraphError> {
    let err = |message: String| format_err(path, message);
    if bytes[..4] != CSRBIN_MAGIC {
        return Err(err("not a .csrbin file (bad magic)".into()));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != CSRBIN_VERSION {
        return Err(err(format!("unknown .csrbin version {version} (expected {CSRBIN_VERSION})")));
    }
    let n = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let m = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    if n > VertexId::MAX as u64 {
        return Err(err(format!("{n} vertices exceeds the u32 vertex-id space")));
    }
    // Bound m *before* any length arithmetic: the file must physically hold
    // 2m u32 targets, so a claim beyond len/8 is corrupt — and, unchecked,
    // a huge m would overflow the `8 * m` below into a wrapped "expected"
    // length a crafted header could match.
    if m > bytes.len() as u64 / 8 {
        return Err(err(format!("{m} edges cannot fit in a {}-byte file", bytes.len())));
    }
    let (n, m) = (n as usize, m as usize);
    // No overflow: n + 1 <= 2^32 and 8m <= bytes.len() after the checks
    // above.
    let expected = CSRBIN_HEADER_BYTES as u64 + 8 * (n as u64 + 1) + 8 * m as u64;
    if bytes.len() as u64 != expected {
        return Err(err(format!("length {} != expected {expected} for n={n} m={m}", bytes.len())));
    }
    // Read the arrays through safe (unaligned-tolerant) decoding for the
    // validation pass; the hot-path slices are only constructed after these
    // checks succeed.
    let offset_at = |i: usize| {
        let at = CSRBIN_HEADER_BYTES + 8 * i;
        u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
    };
    let target_at = |i: usize| {
        let at = CSRBIN_HEADER_BYTES + 8 * (n + 1) + 4 * i;
        u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"))
    };
    if offset_at(0) != 0 {
        return Err(err("offsets[0] != 0".into()));
    }
    if offset_at(n) != 2 * m as u64 {
        return Err(err(format!("offsets[n] = {} != 2m = {}", offset_at(n), 2 * m)));
    }
    let mut prev_end = 0u64;
    for u in 0..n {
        let (start, end) = (offset_at(u), offset_at(u + 1));
        if start != prev_end || end < start || end > 2 * m as u64 {
            return Err(err(format!("offsets not monotone at vertex {u}")));
        }
        prev_end = end;
        let mut last: Option<u32> = None;
        for i in start..end {
            let t = target_at(i as usize);
            if t as usize >= n {
                return Err(err(format!("target {t} out of range for n={n} (vertex {u})")));
            }
            if t as usize == u {
                return Err(err(format!("self-loop on vertex {u}")));
            }
            if last.is_some_and(|p| p >= t) {
                return Err(err(format!("neighbour list of {u} not strictly ascending")));
            }
            last = Some(t);
        }
    }
    Ok((n, m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{write_csrbin, write_csrbin_file};
    use crate::{CsrGraph, Graph};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_path(tag: &str) -> std::path::PathBuf {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("avt_mmap_{}_{tag}_{seq}.csrbin", std::process::id()))
    }

    fn sample_csr() -> CsrGraph {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (4, 3), (1, 4)]).unwrap();
        CsrGraph::from_graph(&g)
    }

    fn assert_agrees(mapped: &MmapCsr, csr: &CsrGraph) {
        assert_eq!(mapped.num_vertices(), csr.num_vertices());
        assert_eq!(mapped.num_edges(), csr.num_edges());
        assert_eq!(mapped.max_degree(), csr.max_degree());
        for u in csr.vertices() {
            assert_eq!(mapped.degree(u), csr.degree(u), "degree of {u}");
            assert_eq!(mapped.neighbors(u), csr.neighbors(u), "neighbours of {u}");
            for v in csr.vertices() {
                assert_eq!(mapped.has_edge(u, v), csr.has_edge(u, v), "edge ({u}, {v})");
            }
        }
        let mapped_edges: Vec<_> = GraphView::edges(mapped).collect();
        let csr_edges: Vec<_> = csr.edges().collect();
        assert_eq!(mapped_edges, csr_edges);
    }

    #[test]
    fn round_trips_through_the_file() {
        let csr = sample_csr();
        let path = temp_path("roundtrip");
        write_csrbin_file(&csr, &path).unwrap();
        let mapped = MmapCsr::open(&path).unwrap();
        assert_agrees(&mapped, &csr);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn empty_and_edgeless_graphs_map() {
        for csr in [CsrGraph::new(0), CsrGraph::new(5)] {
            let path = temp_path("edgeless");
            write_csrbin_file(&csr, &path).unwrap();
            let mapped = MmapCsr::open(&path).unwrap();
            assert_agrees(&mapped, &csr);
            assert!(!mapped.has_edge(0, 1));
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn mapped_frame_is_send_and_sync() {
        let csr = sample_csr();
        let path = temp_path("threads");
        write_csrbin_file(&csr, &path).unwrap();
        let mapped = std::sync::Arc::new(MmapCsr::open(&path).unwrap());
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let frame = std::sync::Arc::clone(&mapped);
                std::thread::spawn(move || frame.neighbors(1).len())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), csr.degree(1));
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rejects_corrupt_files() {
        let csr = sample_csr();
        let mut bytes = Vec::new();
        write_csrbin(&csr, &mut bytes).unwrap();

        let write_and_open = |bytes: &[u8], tag: &str| {
            let path = temp_path(tag);
            std::fs::write(&path, bytes).unwrap();
            let result = MmapCsr::open(&path);
            let _ = std::fs::remove_file(path);
            result
        };

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(write_and_open(&bad, "magic").unwrap_err().to_string().contains("magic"));
        // Unknown version.
        let mut bad = bytes.clone();
        bad[4] = 9;
        assert!(write_and_open(&bad, "version").unwrap_err().to_string().contains("version"));
        // Truncated.
        assert!(write_and_open(&bytes[..bytes.len() - 3], "trunc").is_err());
        assert!(write_and_open(&bytes[..10], "header").is_err());
        // Out-of-range target (last u32 of the file).
        let mut bad = bytes.clone();
        let at = bad.len() - 4;
        bad[at..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(write_and_open(&bad, "target").is_err());
        // Non-monotone offsets: swap offsets[1] up past offsets[n].
        let mut bad = bytes.clone();
        bad[CSRBIN_HEADER_BYTES + 8..CSRBIN_HEADER_BYTES + 16]
            .copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(write_and_open(&bad, "monotone").is_err());
        // Missing file.
        assert!(MmapCsr::open(Path::new("/nonexistent/avt.csrbin")).is_err());
        // Overflow-crafted header: n = 0, m = 2^63 wraps `8·m` to 0, so an
        // unchecked length formula would accept this 32-byte file.
        let mut crafted = Vec::new();
        crafted.extend_from_slice(&CSRBIN_MAGIC);
        crafted.extend_from_slice(&1u32.to_le_bytes());
        crafted.extend_from_slice(&0u64.to_le_bytes());
        crafted.extend_from_slice(&(1u64 << 63).to_le_bytes());
        crafted.extend_from_slice(&0u64.to_le_bytes());
        assert!(write_and_open(&crafted, "overflow")
            .unwrap_err()
            .to_string()
            .contains("cannot fit"));
    }

    #[test]
    fn owned_fallback_matches_mapping() {
        // Exercise the non-mmap backing explicitly so the fallback path is
        // tested on every platform.
        let csr = sample_csr();
        let path = temp_path("owned");
        write_csrbin_file(&csr, &path).unwrap();
        let len = std::fs::metadata(&path).unwrap().len() as usize;
        let mut file = File::open(&path).unwrap();
        let backing = Backing::read_owned(&mut file, len, &path).unwrap();
        let (n, m) = validate(backing.bytes(), &path).unwrap();
        let owned = MmapCsr { backing, n, m };
        assert_agrees(&owned, &csr);
        let _ = std::fs::remove_file(path);
    }
}
