//! Tolerant graph construction from raw edge data.
//!
//! Real edge lists (and SNAP exports in particular) contain duplicate edges,
//! self-loops, both orientations of the same undirected edge, and sparse
//! vertex ids. [`GraphBuilder`] absorbs all of that and produces a clean
//! [`Graph`] plus the id remapping it applied.

use std::collections::HashMap;

use crate::{Graph, VertexId};

/// Accumulates raw `(u, v)` pairs with arbitrary `u64` ids, deduplicates
/// them, drops self-loops, and densifies ids to `0..n`.
///
/// # Example
///
/// ```
/// use avt_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new();
/// b.add_edge(100, 200);
/// b.add_edge(200, 100); // duplicate orientation — ignored
/// b.add_edge(7, 7);     // self-loop — ignored (vertex 7 never appears)
/// let built = b.build();
/// assert_eq!(built.graph.num_vertices(), 2); // ids 100, 200 densified
/// assert_eq!(built.graph.num_edges(), 1);
/// assert_eq!(built.dropped_duplicates, 1);
/// assert_eq!(built.dropped_self_loops, 1);
/// ```
#[derive(Debug, Default)]
pub struct GraphBuilder {
    /// raw-id edges, normalized so u < v, deduplicated at build time
    edges: Vec<(u64, u64)>,
    self_loops: usize,
}

/// The output of [`GraphBuilder::build`].
#[derive(Debug)]
pub struct BuiltGraph {
    /// The densified simple graph.
    pub graph: Graph,
    /// Maps dense id -> original raw id (sorted ascending by raw id).
    pub original_ids: Vec<u64>,
    /// Number of duplicate edges dropped.
    pub dropped_duplicates: usize,
    /// Number of self-loops dropped.
    pub dropped_self_loops: usize,
}

impl BuiltGraph {
    /// Reverse lookup: raw id -> dense id, if the vertex appeared.
    pub fn dense_id(&self, raw: u64) -> Option<VertexId> {
        self.original_ids.binary_search(&raw).ok().map(|i| i as VertexId)
    }
}

impl GraphBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one raw edge. Self-loops are counted and dropped immediately.
    pub fn add_edge(&mut self, a: u64, b: u64) {
        if a == b {
            self.self_loops += 1;
            return;
        }
        self.edges.push(if a < b { (a, b) } else { (b, a) });
    }

    /// Number of raw (non-self-loop) edges recorded so far.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Deduplicate, densify and produce the final graph.
    pub fn build(mut self) -> BuiltGraph {
        self.edges.sort_unstable();
        let before = self.edges.len();
        self.edges.dedup();
        let dropped_duplicates = before - self.edges.len();

        let mut ids: Vec<u64> = Vec::with_capacity(self.edges.len() * 2);
        for &(a, b) in &self.edges {
            ids.push(a);
            ids.push(b);
        }
        ids.sort_unstable();
        ids.dedup();

        let dense: HashMap<u64, VertexId> =
            ids.iter().enumerate().map(|(i, &raw)| (raw, i as VertexId)).collect();

        let mut graph = Graph::new(ids.len());
        for &(a, b) in &self.edges {
            graph.insert_edge(dense[&a], dense[&b]).expect("deduplicated edges cannot conflict");
        }

        BuiltGraph {
            graph,
            original_ids: ids,
            dropped_duplicates,
            dropped_self_loops: self.self_loops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_builder_builds_empty_graph() {
        let built = GraphBuilder::new().build();
        assert_eq!(built.graph.num_vertices(), 0);
        assert_eq!(built.graph.num_edges(), 0);
        assert!(built.original_ids.is_empty());
    }

    #[test]
    fn densifies_sparse_ids_in_sorted_order() {
        let mut b = GraphBuilder::new();
        b.add_edge(1000, 5);
        b.add_edge(5, 42);
        let built = b.build();
        assert_eq!(built.original_ids, vec![5, 42, 1000]);
        assert_eq!(built.dense_id(5), Some(0));
        assert_eq!(built.dense_id(42), Some(1));
        assert_eq!(built.dense_id(1000), Some(2));
        assert_eq!(built.dense_id(7), None);
        // edge (1000,5) -> (2,0); edge (5,42) -> (0,1)
        assert!(built.graph.has_edge(2, 0));
        assert!(built.graph.has_edge(0, 1));
    }

    #[test]
    fn deduplicates_both_orientations() {
        let mut b = GraphBuilder::new();
        b.add_edge(1, 2);
        b.add_edge(2, 1);
        b.add_edge(1, 2);
        let built = b.build();
        assert_eq!(built.graph.num_edges(), 1);
        assert_eq!(built.dropped_duplicates, 2);
    }

    #[test]
    fn counts_self_loops() {
        let mut b = GraphBuilder::new();
        b.add_edge(3, 3);
        b.add_edge(3, 4);
        assert_eq!(b.raw_edge_count(), 1);
        let built = b.build();
        assert_eq!(built.dropped_self_loops, 1);
        assert_eq!(built.graph.num_edges(), 1);
    }
}
