//! The mutable undirected simple graph.

use crate::{Edge, GraphError, VertexId};

/// An undirected simple graph over a fixed vertex set `0..n`.
///
/// Neighbour lists are unsorted `Vec<VertexId>`; insertion is amortized O(1)
/// and deletion is O(deg) via `swap_remove`. The AVT algorithms only ever
/// scan full neighbourhoods, so no ordering is maintained.
///
/// # Example
///
/// ```
/// use avt_graph::Graph;
///
/// let mut g = Graph::new(4);
/// g.insert_edge(0, 1).unwrap();
/// g.insert_edge(1, 2).unwrap();
/// assert_eq!(g.degree(1), 2);
/// assert!(g.has_edge(2, 1));
/// g.remove_edge(0, 1).unwrap();
/// assert_eq!(g.num_edges(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Graph {
    adj: Vec<Vec<VertexId>>,
    m: usize,
}

impl Graph {
    /// An edgeless graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph { adj: vec![Vec::new(); n], m: 0 }
    }

    /// Build a graph from an edge iterator. Duplicate edges and self-loops
    /// are rejected.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            g.insert_edge(u, v)?;
        }
        Ok(g)
    }

    /// Number of vertices (fixed for the graph's lifetime).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges currently present.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Degree of `u` (`d(u, G_t)` in the paper).
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        self.adj[u as usize].len()
    }

    /// The neighbours of `u` (`nbr(u, G_t)` in the paper), in unspecified
    /// order.
    #[inline]
    pub fn neighbors(&self, u: VertexId) -> &[VertexId] {
        &self.adj[u as usize]
    }

    /// Iterator over all vertex ids `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.adj.len() as VertexId
    }

    /// Iterator over all edges, each reported once in normalized form.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            let u = u as VertexId;
            nbrs.iter().filter_map(move |&v| (u < v).then_some(Edge { u, v }))
        })
    }

    /// True when edge `(u, v)` is present; false for self-loops and
    /// out-of-range endpoints. O(min(deg(u), deg(v))).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v || u as usize >= self.adj.len() || v as usize >= self.adj.len() {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.adj[a as usize].contains(&b)
    }

    fn check_vertex(&self, u: VertexId) -> Result<(), GraphError> {
        if (u as usize) < self.adj.len() {
            Ok(())
        } else {
            Err(GraphError::VertexOutOfBounds { vertex: u as u64, n: self.adj.len() })
        }
    }

    /// Insert edge `(u, v)`. Fails on self-loops, out-of-range vertices and
    /// duplicate edges.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u as u64 });
        }
        if self.has_edge(u, v) {
            return Err(GraphError::EdgeConflict { u: u as u64, v: v as u64, inserting: true });
        }
        self.adj[u as usize].push(v);
        self.adj[v as usize].push(u);
        self.m += 1;
        Ok(())
    }

    /// Remove edge `(u, v)`. Fails if the edge is absent.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        let pos_v = self.adj[u as usize].iter().position(|&w| w == v);
        let Some(pos_v) = pos_v else {
            return Err(GraphError::EdgeConflict { u: u as u64, v: v as u64, inserting: false });
        };
        self.adj[u as usize].swap_remove(pos_v);
        let pos_u = self.adj[v as usize]
            .iter()
            .position(|&w| w == u)
            .expect("adjacency lists out of sync: (v,u) missing while (u,v) present");
        self.adj[v as usize].swap_remove(pos_u);
        self.m -= 1;
        Ok(())
    }

    /// Apply a full [`crate::EdgeBatch`]: insertions first, then deletions,
    /// mirroring the paper's `G_t = (G_{t-1} ⊕ E+) ⊖ E-` convention.
    pub fn apply_batch(&mut self, batch: &crate::EdgeBatch) -> Result<(), GraphError> {
        for e in &batch.insertions {
            self.insert_edge(e.u, e.v)?;
        }
        for e in &batch.deletions {
            self.remove_edge(e.u, e.v)?;
        }
        Ok(())
    }

    /// Insert every edge of `edges` at once, with the adjacency pushes
    /// partitioned by vertex range and performed in parallel.
    ///
    /// `bounds` are ascending exclusive per-shard upper bounds over the
    /// vertex ids (last bound = `num_vertices()`); shard `i` owns
    /// `bounds[i-1]..bounds[i]`. Validation is sequential and completes
    /// before any mutation, so the parallel phase is infallible: on error
    /// the graph is unchanged.
    ///
    /// Each shard walks the batch in order and appends to exactly the
    /// neighbour lists it owns, so every `adj[u]` receives the same
    /// elements in the same order as the per-edge [`Self::insert_edge`]
    /// loop would produce — the resulting graph is bit-identical to the
    /// sequential path, not merely isomorphic.
    pub fn insert_edges_sharded(
        &mut self,
        edges: &[Edge],
        bounds: &[usize],
    ) -> Result<(), GraphError> {
        assert_eq!(
            bounds.last().copied().unwrap_or(0),
            self.adj.len(),
            "shard bounds must cover the vertex set"
        );
        for e in edges {
            self.check_vertex(e.u)?;
            self.check_vertex(e.v)?;
            if e.u == e.v {
                return Err(GraphError::SelfLoop { vertex: e.u as u64 });
            }
            if self.has_edge(e.u, e.v) {
                return Err(GraphError::EdgeConflict {
                    u: e.u as u64,
                    v: e.v as u64,
                    inserting: true,
                });
            }
        }
        // Intra-batch duplicates would dodge the has_edge probe above.
        let mut normalized: Vec<(VertexId, VertexId)> =
            edges.iter().map(|e| (e.u.min(e.v), e.u.max(e.v))).collect();
        normalized.sort_unstable();
        for w in normalized.windows(2) {
            if w[0] == w[1] {
                return Err(GraphError::EdgeConflict {
                    u: w[0].0 as u64,
                    v: w[0].1 as u64,
                    inserting: true,
                });
            }
        }

        if bounds.len() <= 1 {
            for e in edges {
                self.adj[e.u as usize].push(e.v);
                self.adj[e.v as usize].push(e.u);
            }
        } else {
            std::thread::scope(|s| {
                let mut rest: &mut [Vec<VertexId>] = &mut self.adj;
                let mut lo = 0usize;
                for &hi in bounds {
                    let (mine, tail) = rest.split_at_mut(hi - lo);
                    rest = tail;
                    let base = lo;
                    lo = hi;
                    if mine.is_empty() {
                        continue;
                    }
                    s.spawn(move || {
                        let span = mine.len();
                        for e in edges {
                            let (u, v) = (e.u as usize, e.v as usize);
                            if u >= base && u - base < span {
                                mine[u - base].push(e.v);
                            }
                            if v >= base && v - base < span {
                                mine[v - base].push(e.u);
                            }
                        }
                    });
                }
            });
        }
        self.m += edges.len();
        Ok(())
    }

    /// Maximum degree over all vertices (0 for an edgeless graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Average degree `2m / n` (0 for an empty vertex set).
    pub fn avg_degree(&self) -> f64 {
        if self.adj.is_empty() {
            0.0
        } else {
            2.0 * self.m as f64 / self.adj.len() as f64
        }
    }

    /// Structural equality up to neighbour-list ordering. O(n + m log m).
    pub fn is_isomorphic_identity(&self, other: &Graph) -> bool {
        if self.num_vertices() != other.num_vertices() || self.m != other.m {
            return false;
        }
        let mut a = Vec::new();
        let mut b = Vec::new();
        for u in 0..self.adj.len() {
            a.clear();
            b.clear();
            a.extend_from_slice(&self.adj[u]);
            b.extend_from_slice(&other.adj[u]);
            a.sort_unstable();
            b.sort_unstable();
            if a != b {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, (0..n as VertexId - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn new_graph_is_edgeless() {
        let g = Graph::new(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 0);
        }
    }

    #[test]
    fn insert_and_query_edges() {
        let g = path(4);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
        assert!(!g.has_edge(0, 99), "out-of-range probe is false, not a panic");
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut g = path(3);
        let err = g.insert_edge(1, 0).unwrap_err();
        assert!(matches!(err, GraphError::EdgeConflict { inserting: true, .. }));
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = Graph::new(3);
        assert!(matches!(g.insert_edge(1, 1), Err(GraphError::SelfLoop { .. })));
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut g = Graph::new(3);
        assert!(matches!(
            g.insert_edge(0, 3),
            Err(GraphError::VertexOutOfBounds { vertex: 3, n: 3 })
        ));
        assert!(matches!(g.remove_edge(5, 0), Err(GraphError::VertexOutOfBounds { .. })));
    }

    #[test]
    fn remove_edge_updates_both_sides() {
        let mut g = path(4);
        g.remove_edge(2, 1).unwrap();
        assert!(!g.has_edge(1, 2));
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.degree(2), 1);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn remove_missing_edge_rejected() {
        let mut g = path(4);
        assert!(matches!(
            g.remove_edge(0, 3),
            Err(GraphError::EdgeConflict { inserting: false, .. })
        ));
    }

    #[test]
    fn edges_iterator_reports_each_edge_once() {
        let g = path(5);
        let mut edges: Vec<Edge> = g.edges().collect();
        edges.sort();
        assert_eq!(edges, vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3), Edge::new(3, 4)]);
    }

    #[test]
    fn apply_batch_inserts_then_deletes() {
        let mut g = path(4);
        let batch = crate::EdgeBatch::from_pairs([(0, 2)], [(0, 1)]);
        g.apply_batch(&batch).unwrap();
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn apply_batch_can_delete_an_edge_inserted_by_same_batch() {
        // Insertions apply first, so a batch may insert and delete the same
        // edge; the net effect is a no-op. This mirrors G ⊕ E+ ⊖ E-.
        let mut g = Graph::new(3);
        let batch = crate::EdgeBatch::from_pairs([(0, 1)], [(0, 1)]);
        g.apply_batch(&batch).unwrap();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn degree_statistics() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(g.max_degree(), 3);
        assert!((g.avg_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn structural_equality_ignores_adjacency_order() {
        let g1 = Graph::from_edges(3, [(0, 1), (0, 2)]).unwrap();
        let g2 = Graph::from_edges(3, [(0, 2), (0, 1)]).unwrap();
        assert!(g1.is_isomorphic_identity(&g2));
        let g3 = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        assert!(!g1.is_isomorphic_identity(&g3));
    }

    #[test]
    fn sharded_insert_is_bit_identical_to_sequential() {
        let edges: Vec<Edge> = [(0, 9), (3, 4), (9, 1), (2, 7), (5, 6), (0, 5), (8, 2), (7, 9)]
            .into_iter()
            .map(|(u, v)| Edge::new(u, v))
            .collect();
        let mut seq = Graph::new(10);
        for e in &edges {
            seq.insert_edge(e.u, e.v).unwrap();
        }
        for bounds in [vec![10], vec![5, 10], vec![3, 6, 8, 10], vec![0, 10]] {
            let mut sharded = Graph::new(10);
            sharded.insert_edges_sharded(&edges, &bounds).unwrap();
            assert_eq!(sharded.num_edges(), seq.num_edges());
            for v in 0..10 {
                // Element-for-element, not just as sets: the sharded path
                // must preserve the sequential push order per list.
                assert_eq!(sharded.neighbors(v), seq.neighbors(v), "vertex {v} bounds {bounds:?}");
            }
        }
    }

    #[test]
    fn sharded_insert_rejects_bad_batches_atomically() {
        let mut g = path(4);
        let before = g.clone();
        // Duplicate against the existing graph.
        let err = g.insert_edges_sharded(&[Edge::new(0, 2), Edge::new(1, 2)], &[2, 4]).unwrap_err();
        assert!(matches!(err, GraphError::EdgeConflict { inserting: true, .. }));
        // Intra-batch duplicate.
        let err = g.insert_edges_sharded(&[Edge::new(0, 2), Edge::new(2, 0)], &[2, 4]).unwrap_err();
        assert!(matches!(err, GraphError::EdgeConflict { inserting: true, .. }));
        // Out of range.
        let err = g.insert_edges_sharded(&[Edge { u: 0, v: 7 }], &[2, 4]).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfBounds { .. }));
        assert!(g.is_isomorphic_identity(&before));
        assert_eq!(g.num_edges(), before.num_edges());
    }

    #[test]
    fn clone_is_independent() {
        let mut g = path(3);
        let snapshot = g.clone();
        g.insert_edge(0, 2).unwrap();
        assert_eq!(snapshot.num_edges(), 2);
        assert_eq!(g.num_edges(), 3);
    }
}
