//! The read-only substrate abstraction every analysis layer is generic
//! over.
//!
//! [`GraphView`] captures exactly the queries the AVT algorithms perform on
//! a *frozen* snapshot: vertex/edge counts, degrees, neighbourhood scans,
//! and membership probes. Two substrates implement it:
//!
//! * [`crate::Graph`] — the mutable `Vec<Vec<VertexId>>` adjacency, the
//!   right layout while a snapshot is still being *edited* (incremental
//!   K-order maintenance, batch application);
//! * [`crate::CsrGraph`] — an immutable compressed-sparse-row layout with
//!   one contiguous, per-vertex-sorted target array, the right layout once
//!   a snapshot is *frozen* and will only ever be scanned.
//!
//! Making the representation a trait parameter (instead of hard-coding
//! `&Graph`) is what lets `CoreDecomposition`, `AnchoredCoreState` and the
//! per-snapshot solvers run unchanged on either substrate — and is the
//! seam future substrates (mmap-backed CSR, sharded views) plug into.

use crate::{Edge, VertexId};

/// Read-only view of an undirected simple graph over vertices `0..n`.
///
/// The `Send + Sync` supertraits let generic algorithm code fan candidate
/// evaluation out over threads without per-call-site bounds; every sensible
/// substrate (owned vectors, mmap'd buffers) satisfies them.
///
/// # Example
///
/// ```
/// use avt_graph::{CsrGraph, Graph, GraphView};
///
/// fn triangle_count<G: GraphView>(g: &G) -> usize {
///     g.edges()
///         .map(|e| g.neighbors(e.u).iter().filter(|&&w| w > e.v && g.has_edge(w, e.v)).count())
///         .sum()
/// }
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap();
/// let csr = CsrGraph::from_graph(&g);
/// assert_eq!(triangle_count(&g), 1);
/// assert_eq!(triangle_count(&csr), 1);
/// ```
pub trait GraphView: Send + Sync {
    /// Number of vertices (the vertex set is always `0..n`).
    fn num_vertices(&self) -> usize;

    /// Number of edges.
    fn num_edges(&self) -> usize;

    /// The neighbours of `u` as a slice (`nbr(u, G_t)` in the paper). The
    /// ordering is substrate-specific: unspecified for [`crate::Graph`],
    /// ascending for [`crate::CsrGraph`].
    fn neighbors(&self, u: VertexId) -> &[VertexId];

    /// True when edge `(u, v)` is present. Total: false for `u == v` and
    /// for out-of-range endpoints on every substrate, so generic probe
    /// loops behave identically wherever they run.
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool;

    /// Degree of `u` (`d(u, G_t)` in the paper).
    #[inline]
    fn degree(&self, u: VertexId) -> usize {
        self.neighbors(u).len()
    }

    /// Iterator over all vertex ids `0..n`.
    #[inline]
    fn vertices(&self) -> std::ops::Range<VertexId> {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over all edges, each reported once in normalized
    /// (`u < v`) form.
    fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u).iter().filter_map(move |&v| (u < v).then_some(Edge { u, v }))
        })
    }

    /// Maximum degree over all vertices (0 for an edgeless graph).
    fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average degree `2m / n` (0 for an empty vertex set).
    fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            2.0 * self.num_edges() as f64 / self.num_vertices() as f64
        }
    }
}

impl GraphView for crate::Graph {
    #[inline]
    fn num_vertices(&self) -> usize {
        crate::Graph::num_vertices(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        crate::Graph::num_edges(self)
    }

    #[inline]
    fn neighbors(&self, u: VertexId) -> &[VertexId] {
        crate::Graph::neighbors(self, u)
    }

    #[inline]
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        crate::Graph::has_edge(self, u, v)
    }

    #[inline]
    fn degree(&self, u: VertexId) -> usize {
        crate::Graph::degree(self, u)
    }

    fn max_degree(&self) -> usize {
        crate::Graph::max_degree(self)
    }

    fn avg_degree(&self) -> f64 {
        crate::Graph::avg_degree(self)
    }
}

impl<G: GraphView> GraphView for &G {
    #[inline]
    fn num_vertices(&self) -> usize {
        (**self).num_vertices()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        (**self).num_edges()
    }

    #[inline]
    fn neighbors(&self, u: VertexId) -> &[VertexId] {
        (**self).neighbors(u)
    }

    #[inline]
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        (**self).has_edge(u, v)
    }

    #[inline]
    fn degree(&self, u: VertexId) -> usize {
        (**self).degree(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CsrGraph, Graph};

    fn sample() -> Graph {
        Graph::from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap()
    }

    /// Exercise every trait method through a generic function so both
    /// substrates go through the same code path.
    fn summarize<G: GraphView>(g: &G) -> (usize, usize, usize, Vec<Edge>, bool, bool) {
        let mut edges: Vec<Edge> = g.edges().collect();
        edges.sort();
        (g.num_vertices(), g.num_edges(), g.max_degree(), edges, g.has_edge(0, 2), g.has_edge(0, 3))
    }

    #[test]
    fn graph_and_csr_agree_through_the_trait() {
        let g = sample();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(summarize(&g), summarize(&csr));
        // The reference blanket impl forwards everything.
        assert_eq!(summarize(&&g), summarize(&g));
    }

    #[test]
    fn provided_methods_match_inherent_ones() {
        let g = sample();
        assert_eq!(GraphView::degree(&g, 2), 3);
        assert_eq!(GraphView::vertices(&g).count(), 5);
        assert_eq!(GraphView::max_degree(&g), 3);
        assert!((GraphView::avg_degree(&g) - 1.6).abs() < 1e-12);
        assert_eq!(GraphView::avg_degree(&Graph::new(0)), 0.0);
    }
}
