//! The immutable compressed-sparse-row substrate for frozen snapshots.
//!
//! A [`CsrGraph`] stores the whole adjacency structure in two contiguous
//! arrays: `offsets[u]..offsets[u + 1]` indexes into `targets`, which holds
//! every neighbour list back to back, each sorted ascending. Compared to
//! the heap-fragmented `Vec<Vec<VertexId>>` of [`Graph`] this buys:
//!
//! * sequential neighbourhood scans with no pointer chasing — the access
//!   pattern of the bucket peel and the order-based follower queries;
//! * O(log deg) membership probes via binary search on the sorted lists;
//! * O(n + m) whole-structure clones (two `memcpy`s), which is what makes
//!   the incremental [`crate::EvolvingGraph::frames`] pipeline cheap.
//!
//! The price is immutability: there is no `insert_edge`. Evolution happens
//! functionally through [`CsrGraph::apply_batch`], which builds the next
//! frame in one merge pass over the arrays — O(n + m + churn log churn),
//! never a from-scratch replay.

use crate::{EdgeBatch, Graph, GraphError, GraphView, VertexId};

/// An immutable undirected simple graph in compressed-sparse-row layout.
///
/// Construct one with [`CsrGraph::from_graph`] / [`CsrGraph::from_edges`],
/// or derive the next snapshot from an existing one with
/// [`CsrGraph::apply_batch`]. All read queries mirror [`Graph`]'s, with
/// neighbour lists additionally guaranteed sorted.
///
/// # Example
///
/// ```
/// use avt_graph::{CsrGraph, Graph};
///
/// let g = Graph::from_edges(4, [(2, 1), (0, 1), (1, 3)]).unwrap();
/// let csr = CsrGraph::from_graph(&g);
/// assert_eq!(csr.neighbors(1), &[0, 2, 3]); // sorted, unlike Graph
/// assert!(csr.has_edge(3, 1));
/// assert_eq!(csr.num_edges(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[u]..offsets[u + 1]` is `u`'s slice of `targets`; length
    /// `n + 1`, `offsets[n] == targets.len()`.
    offsets: Vec<usize>,
    /// All neighbour lists, concatenated, each sorted ascending.
    targets: Vec<VertexId>,
    /// Edge count (`targets.len() / 2`).
    m: usize,
}

impl CsrGraph {
    /// An edgeless CSR graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        CsrGraph { offsets: vec![0; n + 1], targets: Vec::new(), m: 0 }
    }

    /// Freeze a mutable [`Graph`] into CSR form. O(n + m log Δ) for the
    /// per-vertex sorts (Δ = max degree).
    pub fn from_graph(graph: &Graph) -> Self {
        let n = graph.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * graph.num_edges());
        offsets.push(0);
        for u in 0..n as VertexId {
            let start = targets.len();
            targets.extend_from_slice(graph.neighbors(u));
            targets[start..].sort_unstable();
            offsets.push(targets.len());
        }
        CsrGraph { offsets, targets, m: graph.num_edges() }
    }

    /// Build directly from an edge iterator. Rejects self-loops,
    /// out-of-range endpoints and duplicate edges, exactly like
    /// [`Graph::from_edges`].
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        let mut m = 0usize;
        for (u, v) in edges {
            for x in [u, v] {
                if x as usize >= n {
                    return Err(GraphError::VertexOutOfBounds { vertex: x as u64, n });
                }
            }
            if u == v {
                return Err(GraphError::SelfLoop { vertex: u as u64 });
            }
            adj[u as usize].push(v);
            adj[v as usize].push(u);
            m += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * m);
        offsets.push(0);
        for list in &mut adj {
            list.sort_unstable();
            if let Some(w) = list.windows(2).find(|w| w[0] == w[1]) {
                let u = (offsets.len() - 1) as u64;
                return Err(GraphError::EdgeConflict { u, v: w[0] as u64, inserting: true });
            }
            targets.extend_from_slice(list);
            offsets.push(targets.len());
        }
        Ok(CsrGraph { offsets, targets, m })
    }

    /// Thaw back into a mutable [`Graph`] (for handing a frozen frame to
    /// the maintenance layer). O(n + m).
    pub fn to_graph(&self) -> Graph {
        Graph::from_edges(self.num_vertices(), self.edges().map(|e| (e.u, e.v)))
            .expect("a CSR graph is always a valid simple graph")
    }

    /// Derive the *next* snapshot: apply a full [`EdgeBatch`] (insertions
    /// first, then deletions, mirroring `G_t = (G_{t-1} ⊕ E+) ⊖ E-`) and
    /// return the result as a fresh CSR graph. One merge pass over the
    /// arrays — O(n + m + churn log churn) — with the same error semantics
    /// as [`Graph::apply_batch`]: inserting a present edge or deleting an
    /// absent one fails.
    pub fn apply_batch(&self, batch: &EdgeBatch) -> Result<CsrGraph, GraphError> {
        let n = self.num_vertices();
        let check = |x: VertexId| {
            if (x as usize) < n {
                Ok(())
            } else {
                Err(GraphError::VertexOutOfBounds { vertex: x as u64, n })
            }
        };

        // Per-vertex sorted insertion lists, validated against the current
        // structure (duplicates inside the batch surface after the sort).
        let mut ins: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for e in &batch.insertions {
            check(e.u)?;
            check(e.v)?;
            if e.u == e.v {
                return Err(GraphError::SelfLoop { vertex: e.u as u64 });
            }
            if self.has_edge(e.u, e.v) {
                return Err(GraphError::EdgeConflict {
                    u: e.u as u64,
                    v: e.v as u64,
                    inserting: true,
                });
            }
            ins[e.u as usize].push(e.v);
            ins[e.v as usize].push(e.u);
        }
        for (u, list) in ins.iter_mut().enumerate() {
            list.sort_unstable();
            if let Some(w) = list.windows(2).find(|w| w[0] == w[1]) {
                return Err(GraphError::EdgeConflict {
                    u: u as u64,
                    v: w[0] as u64,
                    inserting: true,
                });
            }
        }

        // Deletions may target pre-existing edges or ones inserted by this
        // very batch (insertions apply first).
        let mut del: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for e in &batch.deletions {
            check(e.u)?;
            check(e.v)?;
            let present = self.has_edge(e.u, e.v) || ins[e.u as usize].binary_search(&e.v).is_ok();
            if !present {
                return Err(GraphError::EdgeConflict {
                    u: e.u as u64,
                    v: e.v as u64,
                    inserting: false,
                });
            }
            del[e.u as usize].push(e.v);
            del[e.v as usize].push(e.u);
        }
        for (u, list) in del.iter_mut().enumerate() {
            list.sort_unstable();
            if let Some(w) = list.windows(2).find(|w| w[0] == w[1]) {
                // A second deletion of the same edge targets an edge that
                // is already gone.
                return Err(GraphError::EdgeConflict {
                    u: u as u64,
                    v: w[0] as u64,
                    inserting: false,
                });
            }
        }

        // Single merge pass: old (sorted) ∪ ins (sorted) minus del (sorted).
        let grown = self.targets.len() + 2 * batch.insertions.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(grown.saturating_sub(2 * batch.deletions.len()));
        offsets.push(0);
        for u in 0..n {
            let old = self.neighbors(u as VertexId);
            let add = &ins[u];
            let drop = &del[u];
            let (mut i, mut j, mut d) = (0usize, 0usize, 0usize);
            while i < old.len() || j < add.len() {
                let next = match (old.get(i), add.get(j)) {
                    (Some(&a), Some(&b)) if a <= b => {
                        i += 1;
                        a
                    }
                    (Some(&a), None) => {
                        i += 1;
                        a
                    }
                    (_, Some(&b)) => {
                        j += 1;
                        b
                    }
                    (None, None) => unreachable!("loop condition guarantees one side"),
                };
                if d < drop.len() && drop[d] == next {
                    d += 1;
                    continue;
                }
                targets.push(next);
            }
            offsets.push(targets.len());
        }
        debug_assert_eq!(targets.len() % 2, 0, "every edge stores two directed arcs");
        let m = targets.len() / 2;
        Ok(CsrGraph { offsets, targets, m })
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        self.offsets[u as usize + 1] - self.offsets[u as usize]
    }

    /// The neighbours of `u`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, u: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[u as usize]..self.offsets[u as usize + 1]]
    }

    // `vertices()`, `edges()` and `avg_degree()` come from the GraphView
    // defaults — no inherent duplicates to drift out of sync.

    /// True when edge `(u, v)` is present; false for self-loops and
    /// out-of-range endpoints. O(log min(deg(u), deg(v))) via binary
    /// search on the shorter sorted list.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v || u as usize >= self.num_vertices() || v as usize >= self.num_vertices() {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Maximum degree over all vertices (0 for an edgeless graph). One
    /// pass over the offset array, no neighbour slices materialized.
    pub fn max_degree(&self) -> usize {
        self.offsets.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0)
    }

    /// The raw offset array: `n + 1` entries, `offsets[n] == 2m`. Together
    /// with [`Self::targets`] this *is* the whole structure — the pair is
    /// what [`crate::io::write_csrbin`] serializes and what
    /// [`crate::MmapCsr`] reads back without deserializing.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw concatenated neighbour array (`2m` entries, each per-vertex
    /// slice sorted ascending). See [`Self::offsets`].
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }
}

impl GraphView for CsrGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        CsrGraph::num_vertices(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        CsrGraph::num_edges(self)
    }

    #[inline]
    fn neighbors(&self, u: VertexId) -> &[VertexId] {
        CsrGraph::neighbors(self, u)
    }

    #[inline]
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        CsrGraph::has_edge(self, u, v)
    }

    #[inline]
    fn degree(&self, u: VertexId) -> usize {
        CsrGraph::degree(self, u)
    }

    fn max_degree(&self) -> usize {
        CsrGraph::max_degree(self)
    }
}

impl From<&Graph> for CsrGraph {
    fn from(graph: &Graph) -> Self {
        CsrGraph::from_graph(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Edge;

    fn sample() -> Graph {
        Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (4, 3), (1, 4)]).unwrap()
    }

    fn assert_matches(csr: &CsrGraph, g: &Graph) {
        assert_eq!(csr.num_vertices(), g.num_vertices());
        assert_eq!(csr.num_edges(), g.num_edges());
        for v in g.vertices() {
            assert_eq!(csr.degree(v), g.degree(v), "degree of {v}");
            let mut expect = g.neighbors(v).to_vec();
            expect.sort_unstable();
            assert_eq!(csr.neighbors(v), &expect[..], "neighbours of {v}");
        }
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(csr.has_edge(u, v), g.has_edge(u, v), "edge ({u}, {v})");
            }
        }
    }

    #[test]
    fn from_graph_round_trips() {
        let g = sample();
        let csr = CsrGraph::from_graph(&g);
        assert_matches(&csr, &g);
        assert!(csr.to_graph().is_isomorphic_identity(&g));
    }

    #[test]
    fn from_edges_matches_graph_from_edges() {
        let edges = [(0u32, 1u32), (1, 2), (2, 0), (2, 3)];
        let g = Graph::from_edges(5, edges).unwrap();
        let csr = CsrGraph::from_edges(5, edges).unwrap();
        assert_matches(&csr, &g);
    }

    #[test]
    fn from_edges_rejects_bad_input() {
        assert!(matches!(
            CsrGraph::from_edges(3, [(0, 0)]),
            Err(GraphError::SelfLoop { vertex: 0 })
        ));
        assert!(matches!(
            CsrGraph::from_edges(3, [(0, 4)]),
            Err(GraphError::VertexOutOfBounds { vertex: 4, n: 3 })
        ));
        assert!(matches!(
            CsrGraph::from_edges(3, [(0, 1), (1, 0)]),
            Err(GraphError::EdgeConflict { inserting: true, .. })
        ));
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = Graph::from_edges(5, [(2, 4), (2, 0), (2, 3), (2, 1)]).unwrap();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.neighbors(2), &[0, 1, 3, 4]);
        assert_eq!(csr.max_degree(), 4);
    }

    #[test]
    fn apply_batch_matches_mutable_application() {
        let g = sample();
        let csr = CsrGraph::from_graph(&g);
        let batch = EdgeBatch::from_pairs([(0, 5), (3, 5)], [(2, 3), (0, 1)]);
        let next = csr.apply_batch(&batch).unwrap();
        let mut expect = g.clone();
        expect.apply_batch(&batch).unwrap();
        assert_matches(&next, &expect);
        // The source frame is untouched (functional update).
        assert_matches(&csr, &g);
    }

    #[test]
    fn apply_batch_can_delete_same_batch_insertion() {
        let csr = CsrGraph::from_graph(&Graph::new(3));
        let batch = EdgeBatch::from_pairs([(0, 1)], [(0, 1)]);
        let next = csr.apply_batch(&batch).unwrap();
        assert_eq!(next.num_edges(), 0);
    }

    #[test]
    fn apply_batch_rejects_conflicts() {
        let csr = CsrGraph::from_edges(4, [(0, 1)]).unwrap();
        // Inserting a present edge.
        let err = csr.apply_batch(&EdgeBatch::from_pairs([(1, 0)], [])).unwrap_err();
        assert!(matches!(err, GraphError::EdgeConflict { inserting: true, .. }));
        // Duplicate insertion within one batch.
        let err = csr.apply_batch(&EdgeBatch::from_pairs([(2, 3), (3, 2)], [])).unwrap_err();
        assert!(matches!(err, GraphError::EdgeConflict { inserting: true, .. }));
        // Deleting an absent edge.
        let err = csr.apply_batch(&EdgeBatch::from_pairs([], [(2, 3)])).unwrap_err();
        assert!(matches!(err, GraphError::EdgeConflict { inserting: false, .. }));
        // Deleting the same edge twice in one batch.
        let err = csr.apply_batch(&EdgeBatch::from_pairs([], [(0, 1), (1, 0)])).unwrap_err();
        assert!(matches!(err, GraphError::EdgeConflict { inserting: false, .. }));
        // Self-loop (only constructible by writing Edge fields directly —
        // Edge::new rejects it) and out-of-range insertions.
        let loop_batch = EdgeBatch { insertions: vec![Edge { u: 2, v: 2 }], deletions: Vec::new() };
        assert!(matches!(csr.apply_batch(&loop_batch), Err(GraphError::SelfLoop { vertex: 2 })));
        assert!(csr.apply_batch(&EdgeBatch::from_pairs([(0, 9)], [])).is_err());
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let empty = CsrGraph::new(0);
        assert_eq!(empty.num_vertices(), 0);
        assert_eq!(empty.avg_degree(), 0.0);
        assert!(!empty.has_edge(0, 1));
        let edgeless = CsrGraph::new(4);
        assert_eq!(edgeless.num_edges(), 0);
        assert_eq!(edgeless.max_degree(), 0);
        assert!(edgeless.neighbors(3).is_empty());
        assert_eq!(edgeless.edges().count(), 0);
    }

    #[test]
    fn chained_batches_track_graph_evolution() {
        let mut g = sample();
        let mut csr = CsrGraph::from_graph(&g);
        let batches = [
            EdgeBatch::from_pairs([(0, 5)], [(1, 2)]),
            EdgeBatch::from_pairs([(1, 2), (2, 5)], [(0, 5), (2, 3)]),
            EdgeBatch::from_pairs([], [(1, 4)]),
        ];
        for batch in &batches {
            g.apply_batch(batch).unwrap();
            csr = csr.apply_batch(batch).unwrap();
            assert_matches(&csr, &g);
        }
    }

    #[test]
    fn from_reference_conversion() {
        let g = sample();
        let csr: CsrGraph = (&g).into();
        assert_eq!(csr.num_edges(), g.num_edges());
    }
}
