//! Error type for graph construction and I/O.

use std::fmt;

/// Errors produced while building or parsing graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex id was at least the graph's vertex count.
    VertexOutOfBounds {
        /// The offending vertex id.
        vertex: u64,
        /// The number of vertices in the graph.
        n: usize,
    },
    /// An edge `(u, u)` was supplied; the AVT model uses simple graphs.
    SelfLoop {
        /// The vertex with the self-loop.
        vertex: u64,
    },
    /// The edge already exists (on insert) or does not exist (on remove).
    EdgeConflict {
        /// First endpoint.
        u: u64,
        /// Second endpoint.
        v: u64,
        /// True when the conflict was a duplicate insertion.
        inserting: bool,
    },
    /// A line of an edge-list file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// The writer is unavailable: a live replay borrow requires a
    /// quiesced writer (used by the serve layer's timeline guard).
    WriterBusy,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfBounds { vertex, n } => {
                write!(f, "vertex {vertex} out of bounds for graph with {n} vertices")
            }
            GraphError::SelfLoop { vertex } => {
                write!(f, "self-loop on vertex {vertex} is not allowed in a simple graph")
            }
            GraphError::EdgeConflict { u, v, inserting } => {
                if *inserting {
                    write!(f, "edge ({u}, {v}) already present")
                } else {
                    write!(f, "edge ({u}, {v}) not present")
                }
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::WriterBusy => {
                write!(f, "writer busy: a replay borrow is live; retry after the replay finishes")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::VertexOutOfBounds { vertex: 9, n: 4 };
        assert!(e.to_string().contains("vertex 9"));
        assert!(e.to_string().contains("4 vertices"));

        let e = GraphError::SelfLoop { vertex: 3 };
        assert!(e.to_string().contains("self-loop"));

        let e = GraphError::EdgeConflict { u: 1, v: 2, inserting: true };
        assert!(e.to_string().contains("already present"));
        let e = GraphError::EdgeConflict { u: 1, v: 2, inserting: false };
        assert!(e.to_string().contains("not present"));

        let e = GraphError::Parse { line: 7, message: "bad token".into() };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&GraphError::SelfLoop { vertex: 0 });
    }
}
