//! The frame-source abstraction: where the execution engine's snapshots
//! come from.
//!
//! The temporal execution engine replays "frame `t`, then frame `t+1`, …"
//! and solves each frame in isolation; *how* those frames are produced is
//! an independent axis. [`FrameSource`] captures exactly what the engine
//! needs — a `t`-ordered walk of `(t, Arc<frame>)` pairs plus the frame
//! count — so the engine never names a concrete substrate. Two sources
//! ship:
//!
//! * [`crate::EvolvingGraph`] — *resident* frames: each [`crate::CsrGraph`]
//!   is derived from its predecessor in memory
//!   ([`crate::EvolvingGraph::frames_arc`]);
//! * [`MmapFrames`] — *mapped* frames: a directory of `.csrbin` files
//!   (one per snapshot, written once by [`MmapFrames::spill`]) replayed as
//!   zero-copy [`crate::MmapCsr`] views, so a full-size stream runs in
//!   O(touched pages) resident memory instead of O(frame) per worker plus
//!   the producer's merge chain.
//!
//! Both yield frames whose query semantics are identical (same neighbour
//! order, same probe results), which is what keeps engine output
//! bit-identical across sources.

use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::{EvolvingGraph, GraphError, GraphView, MmapCsr};

/// A `t`-ordered producer of frozen snapshot frames for the execution
/// engine.
///
/// Implementations yield every snapshot exactly once, in ascending `t`,
/// behind an [`Arc`] so frames can outlive the iterator and cross thread
/// boundaries (the pipelined runner's producer hands them to a worker
/// pool). `Sync` is required because the producer runs on a borrowed
/// thread scope.
pub trait FrameSource: Sync {
    /// The substrate the frames are made of.
    type Frame: GraphView;

    /// Number of frames [`Self::iter_frames`] will yield.
    fn num_frames(&self) -> usize;

    /// Walk all frames in ascending `t` (1-based snapshot indices).
    fn iter_frames(&self) -> impl Iterator<Item = (usize, Arc<Self::Frame>)> + Send + '_;
}

impl FrameSource for EvolvingGraph {
    type Frame = crate::CsrGraph;

    fn num_frames(&self) -> usize {
        self.num_snapshots()
    }

    fn iter_frames(&self) -> impl Iterator<Item = (usize, Arc<Self::Frame>)> + Send + '_ {
        self.frames_arc()
    }
}

/// Name of the manifest file marking a complete frame directory. Written
/// *last* by [`MmapFrames::spill`], so a directory with frames but no
/// manifest is a detectably interrupted spill.
const MANIFEST: &str = "MANIFEST";
const MANIFEST_HEADER: &str = "avt-frames v1";

fn frame_filename(t: usize) -> String {
    format!("frame-{t:06}.csrbin")
}

fn dir_err(dir: &Path, message: impl std::fmt::Display) -> GraphError {
    GraphError::Parse { line: 0, message: format!("{}: {message}", dir.display()) }
}

/// A directory of `.csrbin` frames replayed as a zero-copy [`FrameSource`].
///
/// [`MmapFrames::open`] maps and validates every frame eagerly — one
/// streaming pass over each file (see [`MmapCsr::open`]), after which no
/// per-process adjacency structure is ever rebuilt and
/// [`FrameSource::iter_frames`] only bumps refcounts. During solving the
/// frames live in the shared page cache, so resident memory is whatever
/// the queries touch and the kernel can always evict cold frames —
/// unlike resident [`crate::CsrGraph`] chains, which occupy heap for every
/// live frame.
///
/// # Example
///
/// ```
/// use avt_graph::source::{FrameSource, MmapFrames};
/// use avt_graph::{EdgeBatch, EvolvingGraph, Graph, GraphView};
///
/// let mut eg = EvolvingGraph::new(Graph::from_edges(3, [(0, 1)]).unwrap());
/// eg.push_batch(EdgeBatch::from_pairs([(1, 2)], []));
///
/// let dir = std::env::temp_dir().join(format!("avt-doc-frames-{}", std::process::id()));
/// let frames = MmapFrames::spill(&eg, &dir).unwrap();
/// let edge_counts: Vec<_> = frames.iter_frames().map(|(t, f)| (t, f.num_edges())).collect();
/// assert_eq!(edge_counts, vec![(1, 1), (2, 2)]);
/// # std::fs::remove_dir_all(dir).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct MmapFrames {
    // Clone is a refcount bump per frame (the mappings themselves are
    // shared), which is what lets callers memoize an opened source.
    frames: Vec<Arc<MmapCsr>>,
    dir: PathBuf,
}

impl MmapFrames {
    /// Serialize every frame of `evolving` into `dir` (created if missing)
    /// and open the result. Frames are materialized one at a time through
    /// the incremental [`EvolvingGraph::frames_arc`] walk, so spilling
    /// itself runs in O(frame) resident memory. Any previous contents of
    /// `dir` are overwritten; the manifest is written last so an
    /// interrupted spill is never mistaken for a complete cache.
    pub fn spill(evolving: &EvolvingGraph, dir: &Path) -> Result<MmapFrames, GraphError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| dir_err(dir, format!("cannot create directory: {e}")))?;
        // Drop any stale manifest first: readers treat its presence as "the
        // frames below are complete".
        let manifest_path = dir.join(MANIFEST);
        if manifest_path.exists() {
            std::fs::remove_file(&manifest_path)
                .map_err(|e| dir_err(dir, format!("cannot clear stale manifest: {e}")))?;
        }
        for (t, frame) in evolving.frames_arc() {
            crate::io::write_csrbin_file(&frame, &dir.join(frame_filename(t)))?;
        }
        let mut manifest = std::fs::File::create(&manifest_path)
            .map_err(|e| dir_err(dir, format!("cannot write manifest: {e}")))
            .map(std::io::BufWriter::new)?;
        writeln!(manifest, "{MANIFEST_HEADER}\nframes {}", evolving.num_snapshots())
            .and_then(|()| manifest.flush())
            .map_err(|e| dir_err(dir, format!("cannot write manifest: {e}")))?;
        Self::open(dir)
    }

    /// Open a complete frame directory previously written by
    /// [`MmapFrames::spill`]. Fails when the manifest is missing or
    /// malformed, or any listed frame fails to map/validate.
    pub fn open(dir: &Path) -> Result<MmapFrames, GraphError> {
        let manifest = std::fs::File::open(dir.join(MANIFEST))
            .map_err(|e| dir_err(dir, format!("no frame manifest: {e}")))?;
        let mut lines = std::io::BufReader::new(manifest).lines();
        let mut next = || {
            lines
                .next()
                .transpose()
                .map_err(|e| dir_err(dir, format!("manifest read: {e}")))?
                .ok_or_else(|| dir_err(dir, "manifest truncated"))
        };
        if next()? != MANIFEST_HEADER {
            return Err(dir_err(dir, "unrecognized manifest header"));
        }
        let count_line = next()?;
        let count: usize = count_line
            .strip_prefix("frames ")
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| dir_err(dir, format!("bad manifest count line {count_line:?}")))?;
        let frames = (1..=count)
            .map(|t| MmapCsr::open(&dir.join(frame_filename(t))).map(Arc::new))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MmapFrames { frames, dir: dir.to_path_buf() })
    }

    /// The directory the frames are mapped from.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The same mapped frames, reporting `dir` as their location. Mappings
    /// are inode-based, so renaming the parent directory does not
    /// invalidate them — callers that spill into a staging directory and
    /// publish it with an atomic `rename` use this to fix up the reported
    /// path without re-validating every frame.
    pub fn at_dir(mut self, dir: PathBuf) -> MmapFrames {
        self.dir = dir;
        self
    }

    /// Shared handle to frame `t` (1-based), if in range.
    pub fn frame(&self, t: usize) -> Option<Arc<MmapCsr>> {
        self.frames.get(t.checked_sub(1)?).map(Arc::clone)
    }
}

impl FrameSource for MmapFrames {
    type Frame = MmapCsr;

    fn num_frames(&self) -> usize {
        self.frames.len()
    }

    fn iter_frames(&self) -> impl Iterator<Item = (usize, Arc<Self::Frame>)> + Send + '_ {
        self.frames.iter().enumerate().map(|(i, frame)| (i + 1, Arc::clone(frame)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgeBatch, Graph};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("avt_source_{}_{tag}_{seq}", std::process::id()))
    }

    fn sample() -> EvolvingGraph {
        let g1 = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut eg = EvolvingGraph::new(g1);
        eg.push_batch(EdgeBatch::from_pairs([(3, 4)], []));
        eg.push_batch(EdgeBatch::from_pairs([(0, 4)], [(0, 1)]));
        eg
    }

    #[test]
    fn evolving_graph_is_a_frame_source() {
        let eg = sample();
        assert_eq!(FrameSource::num_frames(&eg), 3);
        let walked: Vec<_> = eg.iter_frames().map(|(t, f)| (t, f.num_edges())).collect();
        assert_eq!(walked, vec![(1, 3), (2, 4), (3, 4)]);
    }

    #[test]
    fn spilled_frames_replay_identically() {
        let eg = sample();
        let dir = temp_dir("replay");
        let frames = MmapFrames::spill(&eg, &dir).unwrap();
        assert_eq!(frames.num_frames(), eg.num_snapshots());
        assert_eq!(frames.dir(), dir.as_path());
        for ((mt, mapped), (rt, resident)) in frames.iter_frames().zip(eg.frames_arc()) {
            assert_eq!(mt, rt);
            assert_eq!(mapped.num_vertices(), resident.num_vertices(), "t={rt}");
            assert_eq!(mapped.num_edges(), resident.num_edges(), "t={rt}");
            for u in resident.vertices() {
                assert_eq!(mapped.neighbors(u), resident.neighbors(u), "t={rt} u={u}");
            }
        }
        // frame() accessor agrees with the walk and bounds-checks.
        assert_eq!(frames.frame(2).unwrap().num_edges(), 4);
        assert!(frames.frame(0).is_none());
        assert!(frames.frame(4).is_none());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn reopen_uses_the_cache_without_the_graph() {
        let eg = sample();
        let dir = temp_dir("reopen");
        drop(MmapFrames::spill(&eg, &dir).unwrap());
        let reopened = MmapFrames::open(&dir).unwrap();
        assert_eq!(reopened.num_frames(), 3);
        assert_eq!(reopened.frame(3).unwrap().num_edges(), 4);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn incomplete_spill_is_rejected() {
        let eg = sample();
        let dir = temp_dir("incomplete");
        drop(MmapFrames::spill(&eg, &dir).unwrap());
        // Simulate an interrupted spill: a frame is gone but the manifest
        // still promises it.
        std::fs::remove_file(dir.join(frame_filename(2))).unwrap();
        assert!(MmapFrames::open(&dir).is_err());
        // No manifest at all.
        std::fs::remove_file(dir.join(MANIFEST)).unwrap();
        assert!(MmapFrames::open(&dir).err().unwrap().to_string().contains("manifest"));
        // Re-spilling repairs the directory.
        let repaired = MmapFrames::spill(&eg, &dir).unwrap();
        assert_eq!(repaired.num_frames(), 3);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn malformed_manifest_is_rejected() {
        let dir = temp_dir("badmanifest");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(MANIFEST), "something else\n").unwrap();
        assert!(MmapFrames::open(&dir).is_err());
        std::fs::write(dir.join(MANIFEST), format!("{MANIFEST_HEADER}\nframes nope\n")).unwrap();
        assert!(MmapFrames::open(&dir).is_err());
        std::fs::write(dir.join(MANIFEST), format!("{MANIFEST_HEADER}\n")).unwrap();
        assert!(MmapFrames::open(&dir).err().unwrap().to_string().contains("truncated"));
        let _ = std::fs::remove_dir_all(dir);
    }
}
