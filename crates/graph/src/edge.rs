//! Undirected edges and the `E+`/`E-` batch model.

use crate::VertexId;

/// An undirected edge stored in normalized form (`u <= v` is *not* required
/// at construction; [`Edge::new`] normalizes so that `Edge(1,2) == Edge(2,1)`
/// and edges can be used as set/map keys).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: VertexId,
    /// Larger endpoint.
    pub v: VertexId,
}

impl Edge {
    /// Create a normalized edge. Panics on self-loops, which are invalid in
    /// the simple-graph model used throughout.
    #[inline]
    pub fn new(a: VertexId, b: VertexId) -> Self {
        assert_ne!(a, b, "self-loop ({a}, {a}) is not a valid edge");
        if a < b {
            Edge { u: a, v: b }
        } else {
            Edge { u: b, v: a }
        }
    }

    /// The endpoint opposite to `x`. Panics if `x` is not an endpoint.
    #[inline]
    pub fn other(&self, x: VertexId) -> VertexId {
        if x == self.u {
            self.v
        } else {
            assert_eq!(x, self.v, "vertex {x} is not an endpoint of {self:?}");
            self.u
        }
    }

    /// Both endpoints as an array, smaller first.
    #[inline]
    pub fn endpoints(&self) -> [VertexId; 2] {
        [self.u, self.v]
    }
}

impl From<(VertexId, VertexId)> for Edge {
    fn from((a, b): (VertexId, VertexId)) -> Self {
        Edge::new(a, b)
    }
}

/// The edge churn between two consecutive snapshots: the paper's `E+`
/// (insertions) and `E-` (deletions).
///
/// A batch is applied insertions-first, mirroring Algorithm 6 of the paper
/// (`G'_t := G_{t-1} ⊕ E+` feeds `EdgeInsert`, then `E-` feeds
/// `EdgeRemove`). Batches must be *consistent*: an inserted edge must be
/// absent from the pre-state, a deleted edge present in the post-insertion
/// state, and the two sets disjoint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeBatch {
    /// Edges inserted at this step (`E+`).
    pub insertions: Vec<Edge>,
    /// Edges deleted at this step (`E-`).
    pub deletions: Vec<Edge>,
}

impl EdgeBatch {
    /// An empty batch (a timestamp with no churn).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a batch from endpoint pairs.
    pub fn from_pairs<I, D>(insertions: I, deletions: D) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
        D: IntoIterator<Item = (VertexId, VertexId)>,
    {
        EdgeBatch {
            insertions: insertions.into_iter().map(Edge::from).collect(),
            deletions: deletions.into_iter().map(Edge::from).collect(),
        }
    }

    /// Total number of edge events in the batch.
    pub fn len(&self) -> usize {
        self.insertions.len() + self.deletions.len()
    }

    /// True when the batch carries no events.
    pub fn is_empty(&self) -> bool {
        self.insertions.is_empty() && self.deletions.is_empty()
    }

    /// The batch that undoes this one (insertions and deletions swapped).
    pub fn inverted(&self) -> EdgeBatch {
        EdgeBatch { insertions: self.deletions.clone(), deletions: self.insertions.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_normalizes_endpoint_order() {
        assert_eq!(Edge::new(3, 1), Edge::new(1, 3));
        assert_eq!(Edge::new(3, 1).u, 1);
        assert_eq!(Edge::new(3, 1).v, 3);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn edge_rejects_self_loop() {
        let _ = Edge::new(2, 2);
    }

    #[test]
    fn edge_other_returns_opposite_endpoint() {
        let e = Edge::new(4, 9);
        assert_eq!(e.other(4), 9);
        assert_eq!(e.other(9), 4);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_panics_for_non_endpoint() {
        let _ = Edge::new(4, 9).other(5);
    }

    #[test]
    fn edge_from_tuple() {
        let e: Edge = (7u32, 2u32).into();
        assert_eq!(e, Edge::new(2, 7));
    }

    #[test]
    fn batch_len_and_empty() {
        let b = EdgeBatch::new();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);

        let b = EdgeBatch::from_pairs([(0, 1), (1, 2)], [(3, 4)]);
        assert!(!b.is_empty());
        assert_eq!(b.len(), 3);
        assert_eq!(b.insertions.len(), 2);
        assert_eq!(b.deletions.len(), 1);
    }

    #[test]
    fn batch_inverted_swaps_roles() {
        let b = EdgeBatch::from_pairs([(0, 1)], [(3, 4), (4, 5)]);
        let inv = b.inverted();
        assert_eq!(inv.insertions, b.deletions);
        assert_eq!(inv.deletions, b.insertions);
        assert_eq!(inv.inverted(), b);
    }
}
