//! SNAP-style edge-list parsing and writing, plus the binary `.csrbin`
//! snapshot format.
//!
//! Two text formats are supported, matching the datasets in the paper's
//! §6.1:
//!
//! * **static**: one `u v` pair per line (email-Enron, Gnutella, Deezer);
//! * **temporal**: one `u v timestamp` triple per line (eu-core,
//!   mathoverflow, CollegeMsg).
//!
//! Lines starting with `#` or `%` are comments. Tokens may be separated by
//! any ASCII whitespace. Parsing is tolerant of duplicate edges and
//! self-loops (they are dropped, with counts reported via
//! [`crate::builder::BuiltGraph`]).
//!
//! # The `.csrbin` format
//!
//! A [`CsrGraph`] is two flat arrays, so its on-disk form is simply those
//! arrays behind a fixed header — no compression, no framing — laid out so
//! that a page-aligned mapping of the file can be *used in place* as a
//! graph ([`crate::MmapCsr`]). All integers are **little-endian**; the
//! format is not host-endian (a big-endian writer/reader would have to
//! byte-swap, and [`crate::MmapCsr::open`] refuses big-endian hosts rather
//! than silently mis-reading).
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0  | 4 | magic `b"CSRB"` |
//! | 4  | 4 | format version, u32 LE (currently [`CSRBIN_VERSION`] = 1) |
//! | 8  | 8 | `n` — vertex count, u64 LE |
//! | 16 | 8 | `m` — edge count, u64 LE |
//! | 24 | `8·(n+1)` | `offsets` — u64 LE each; `offsets[n] == 2m` |
//! | `24 + 8·(n+1)` | `4·2m` | `targets` — u32 LE vertex ids, each per-vertex slice sorted ascending |
//!
//! The header is 24 bytes, so the `offsets` array begins 8-byte aligned
//! and the `targets` array (at `24 + 8·(n+1)`) begins 4-byte aligned in
//! any page-aligned mapping. The file length is exactly
//! `24 + 8·(n+1) + 8·m`; any mismatch is rejected on open. Future layout
//! changes bump [`CSRBIN_VERSION`]; readers reject versions they do not
//! know.

use std::io::{BufRead, Write};
use std::path::Path;

use crate::builder::BuiltGraph;
use crate::csr::CsrGraph;
use crate::graph::Graph;
use crate::{GraphBuilder, GraphError, VertexId};

/// Magic bytes opening every `.csrbin` file.
pub const CSRBIN_MAGIC: [u8; 4] = *b"CSRB";

/// Current `.csrbin` format version.
pub const CSRBIN_VERSION: u32 = 1;

/// Byte length of the fixed `.csrbin` header (magic + version + n + m).
pub const CSRBIN_HEADER_BYTES: usize = 24;

/// Serialize a frozen CSR frame in the `.csrbin` format (see the module
/// docs for the exact layout). The output is what [`crate::MmapCsr::open`]
/// maps zero-copy.
pub fn write_csrbin<W: Write>(csr: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    writer.write_all(&CSRBIN_MAGIC)?;
    writer.write_all(&CSRBIN_VERSION.to_le_bytes())?;
    writer.write_all(&(csr.num_vertices() as u64).to_le_bytes())?;
    writer.write_all(&(csr.num_edges() as u64).to_le_bytes())?;
    // Buffer the arrays in chunks so unbuffered writers still see a few
    // large writes rather than one syscall per integer.
    let mut buf = Vec::with_capacity(1 << 16);
    for &offset in csr.offsets() {
        buf.extend_from_slice(&(offset as u64).to_le_bytes());
        if buf.len() >= (1 << 16) - 8 {
            writer.write_all(&buf)?;
            buf.clear();
        }
    }
    for &target in csr.targets() {
        buf.extend_from_slice(&target.to_le_bytes());
        if buf.len() >= (1 << 16) - 8 {
            writer.write_all(&buf)?;
            buf.clear();
        }
    }
    writer.write_all(&buf)
}

/// Write a `.csrbin` file at `path` (created or truncated).
pub fn write_csrbin_file(csr: &CsrGraph, path: &Path) -> Result<(), GraphError> {
    let file = std::fs::File::create(path).map_err(|e| GraphError::Parse {
        line: 0,
        message: format!("cannot create {}: {e}", path.display()),
    })?;
    write_csrbin(csr, std::io::BufWriter::new(file)).map_err(|e| GraphError::Parse {
        line: 0,
        message: format!("cannot write {}: {e}", path.display()),
    })
}

/// A timestamped interaction `(u, v, t)` from a temporal edge list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemporalEdge {
    /// First endpoint (raw id).
    pub u: u64,
    /// Second endpoint (raw id).
    pub v: u64,
    /// Event time (seconds or arbitrary units, monotone per dataset).
    pub timestamp: u64,
}

fn is_comment(line: &str) -> bool {
    matches!(line.trim_start().chars().next(), Some('#') | Some('%') | None)
}

fn parse_token(tok: &str, line_no: usize) -> Result<u64, GraphError> {
    tok.parse::<u64>().map_err(|_| GraphError::Parse {
        line: line_no,
        message: format!("expected unsigned integer, found {tok:?}"),
    })
}

/// Parse a static edge list from a reader into a clean dense graph.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<BuiltGraph, GraphError> {
    let mut builder = GraphBuilder::new();
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line
            .map_err(|e| GraphError::Parse { line: line_no, message: format!("I/O error: {e}") })?;
        if is_comment(&line) {
            continue;
        }
        let mut toks = line.split_ascii_whitespace();
        let (Some(a), Some(b)) = (toks.next(), toks.next()) else {
            return Err(GraphError::Parse {
                line: line_no,
                message: "expected two whitespace-separated vertex ids".into(),
            });
        };
        builder.add_edge(parse_token(a, line_no)?, parse_token(b, line_no)?);
    }
    Ok(builder.build())
}

/// Parse a static edge list from a string.
pub fn parse_edge_list(text: &str) -> Result<BuiltGraph, GraphError> {
    read_edge_list(text.as_bytes())
}

/// Parse a temporal edge list (`u v timestamp` per line). Events are
/// returned in file order; callers sort by timestamp as needed.
pub fn read_temporal_edge_list<R: BufRead>(reader: R) -> Result<Vec<TemporalEdge>, GraphError> {
    let mut out = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line
            .map_err(|e| GraphError::Parse { line: line_no, message: format!("I/O error: {e}") })?;
        if is_comment(&line) {
            continue;
        }
        let mut toks = line.split_ascii_whitespace();
        let (Some(a), Some(b), Some(t)) = (toks.next(), toks.next(), toks.next()) else {
            return Err(GraphError::Parse {
                line: line_no,
                message: "expected `u v timestamp`".into(),
            });
        };
        out.push(TemporalEdge {
            u: parse_token(a, line_no)?,
            v: parse_token(b, line_no)?,
            timestamp: parse_token(t, line_no)?,
        });
    }
    Ok(out)
}

/// Parse a temporal edge list from a string.
pub fn parse_temporal_edge_list(text: &str) -> Result<Vec<TemporalEdge>, GraphError> {
    read_temporal_edge_list(text.as_bytes())
}

/// Write a graph as a static edge list (one normalized edge per line) with a
/// SNAP-style header comment.
pub fn write_edge_list<W: Write>(graph: &Graph, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# Undirected graph: {} nodes, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for e in graph.edges() {
        writeln!(writer, "{}\t{}", e.u, e.v)?;
    }
    Ok(())
}

/// Render a graph to an edge-list string (round-trips through
/// [`parse_edge_list`] up to vertex densification).
pub fn edge_list_string(graph: &Graph) -> String {
    let mut buf = Vec::new();
    write_edge_list(graph, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("edge list output is ASCII")
}

/// Densify a set of temporal edges: returns `(n, events)` where events use
/// dense vertex ids `0..n` and are sorted by timestamp (stable for ties).
pub fn densify_temporal(events: &[TemporalEdge]) -> (usize, Vec<(VertexId, VertexId, u64)>) {
    let mut ids: Vec<u64> = events.iter().flat_map(|e| [e.u, e.v]).collect();
    ids.sort_unstable();
    ids.dedup();
    let dense = |raw: u64| -> VertexId {
        ids.binary_search(&raw).expect("id was collected above") as VertexId
    };
    let mut out: Vec<(VertexId, VertexId, u64)> =
        events.iter().map(|e| (dense(e.u), dense(e.v), e.timestamp)).collect();
    out.sort_by_key(|&(_, _, t)| t);
    (ids.len(), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_edge_list() {
        let built = parse_edge_list("# comment\n0 1\n1 2\n\n% also comment\n2 0\n").unwrap();
        assert_eq!(built.graph.num_vertices(), 3);
        assert_eq!(built.graph.num_edges(), 3);
    }

    #[test]
    fn tolerates_duplicates_and_self_loops() {
        let built = parse_edge_list("0 1\n1 0\n2 2\n0 1\n").unwrap();
        assert_eq!(built.graph.num_edges(), 1);
        assert_eq!(built.dropped_duplicates, 2);
        assert_eq!(built.dropped_self_loops, 1);
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = parse_edge_list("0 1\nbogus\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
        let err = parse_edge_list("0\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = parse_edge_list("0 -3\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn tab_separated_ids_accepted() {
        let built = parse_edge_list("10\t20\n20\t30\n").unwrap();
        assert_eq!(built.graph.num_edges(), 2);
        assert_eq!(built.original_ids, vec![10, 20, 30]);
    }

    #[test]
    fn temporal_parse_and_densify() {
        let events = parse_temporal_edge_list("# t\n5 6 100\n6 7 50\n5 7 75\n").unwrap();
        assert_eq!(events.len(), 3);
        let (n, dense) = densify_temporal(&events);
        assert_eq!(n, 3);
        // sorted by timestamp: (6,7,50), (5,7,75), (5,6,100) -> dense ids 5->0,6->1,7->2
        assert_eq!(dense, vec![(1, 2, 50), (0, 2, 75), (0, 1, 100)]);
    }

    #[test]
    fn temporal_rejects_two_token_lines() {
        assert!(parse_temporal_edge_list("1 2\n").is_err());
    }

    #[test]
    fn edge_list_round_trip() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let text = edge_list_string(&g);
        let built = parse_edge_list(&text).unwrap();
        assert!(built.graph.is_isomorphic_identity(&g));
    }

    #[test]
    fn writer_emits_header() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let text = edge_list_string(&g);
        assert!(text.starts_with("# Undirected graph: 2 nodes, 1 edges"));
    }
}
