//! Dynamic undirected graph substrate for Anchored Vertex Tracking.
//!
//! This crate provides the graph representation shared by every other crate
//! in the workspace:
//!
//! * [`Graph`] — a mutable, undirected simple graph over a *fixed* vertex set
//!   `0..n` (the AVT paper assumes all snapshots of an evolving network share
//!   one vertex set; vertices that have not joined yet simply have degree 0).
//! * [`EdgeBatch`] / [`EvolvingGraph`] — the `E+`/`E-` delta model used by
//!   the paper: an evolving network is an initial snapshot plus a sequence of
//!   edge insertions and deletions.
//! * [`io`] — SNAP-style whitespace edge-list parsing and writing, including
//!   the timestamped variant used by the temporal datasets.
//! * [`stats`] — the dataset statistics reported in Table 2 of the paper.
//!
//! The representation is deliberately simple: an adjacency list
//! `Vec<Vec<VertexId>>` with unsorted neighbour vectors and `swap_remove`
//! deletion. Every algorithm in the workspace is neighbour-scan based, so
//! this is the cache-friendliest layout that still supports O(deg) edge
//! deletion, and it avoids the index-rebuild cost a CSR layout would pay on
//! every snapshot transition.

#![warn(missing_docs)]

pub mod builder;
pub mod edge;
pub mod error;
pub mod evolving;
pub mod graph;
pub mod io;
pub mod stats;

pub use builder::GraphBuilder;
pub use edge::{Edge, EdgeBatch};
pub use error::GraphError;
pub use evolving::{EvolvingGraph, SnapshotIter};
pub use graph::Graph;
pub use stats::GraphStats;

/// Vertex identifier. Vertices are dense indices `0..n`.
///
/// A `u32` halves the memory traffic of adjacency scans compared to `usize`
/// on 64-bit targets, which is where these algorithms spend nearly all of
/// their time.
pub type VertexId = u32;
