//! Dynamic undirected graph substrate for Anchored Vertex Tracking.
//!
//! This crate provides the graph substrate shared by every other crate in
//! the workspace:
//!
//! * [`GraphView`] — the read-only trait every analysis layer is generic
//!   over: counts, degrees, neighbourhood slices, membership probes, edge
//!   iteration. The representation is a swappable axis, not a hard-coded
//!   type.
//! * [`Graph`] — the *mutable* substrate: an adjacency list
//!   `Vec<Vec<VertexId>>` with unsorted neighbour vectors and `swap_remove`
//!   deletion, over a *fixed* vertex set `0..n` (the AVT paper assumes all
//!   snapshots of an evolving network share one vertex set; vertices that
//!   have not joined yet simply have degree 0). This is the layout for
//!   state that keeps *changing* — incremental K-order maintenance, batch
//!   application — where O(deg) edge deletion matters.
//! * [`CsrGraph`] — the *immutable* substrate: a compressed-sparse-row
//!   layout (contiguous `offsets`/`targets` arrays, per-vertex-sorted) for
//!   *frozen* snapshots that will only ever be scanned. Sequential
//!   neighbourhood walks — the access pattern of the bucket peel and the
//!   order-based follower queries — run over one dense array; membership
//!   probes binary-search. Evolution is functional:
//!   [`CsrGraph::apply_batch`] merges out the next frame in O(n + m +
//!   churn log churn).
//! * [`MmapCsr`] — the *zero-copy* substrate: the same CSR arrays read in
//!   place from a memory-mapped `.csrbin` file ([`io`] documents the
//!   format), so full-size frozen frames are scanned straight off the page
//!   cache without ever being rebuilt in heap memory.
//! * [`EdgeBatch`] / [`EvolvingGraph`] — the `E+`/`E-` delta model used by
//!   the paper: an evolving network is an initial snapshot plus a sequence
//!   of edge insertions and deletions. [`EvolvingGraph::frames`] walks the
//!   snapshot sequence as CSR frames, each materialized exactly once.
//! * [`source`] — the [`FrameSource`] abstraction the execution engine
//!   consumes: anything yielding `(t, Arc<frame>)` in `t`-order.
//!   [`EvolvingGraph`] is the resident source; [`MmapFrames`] replays a
//!   spilled directory of `.csrbin` frames as mapped views.
//! * [`io`] — SNAP-style whitespace edge-list parsing and writing (plus the
//!   timestamped variant used by the temporal datasets), and the binary
//!   `.csrbin` snapshot writer.
//! * [`stats`] — the dataset statistics reported in Table 2 of the paper,
//!   computable on any substrate.
//!
//! The substrate split mirrors how the AVT algorithms actually touch
//! graphs: per-snapshot solvers (Greedy, OLAK, RCM, brute force) only read
//! a frozen `G_t` and get a CSR layout (resident or mapped); the
//! incremental IncAVT maintains one mutable graph across snapshots and
//! keeps the adjacency-list layout.

#![warn(missing_docs)]

pub mod builder;
pub mod csr;
pub mod edge;
pub mod error;
pub mod evolving;
pub mod graph;
pub mod io;
pub mod mmap;
pub mod source;
pub mod stats;
pub mod view;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use edge::{Edge, EdgeBatch};
pub use error::GraphError;
pub use evolving::{EvolvingGraph, FrameIter};
pub use graph::Graph;
pub use mmap::MmapCsr;
pub use source::{FrameSource, MmapFrames};
pub use stats::GraphStats;
pub use view::GraphView;

/// Vertex identifier. Vertices are dense indices `0..n`.
///
/// A `u32` halves the memory traffic of adjacency scans compared to `usize`
/// on 64-bit targets, which is where these algorithms spend nearly all of
/// their time.
pub type VertexId = u32;
