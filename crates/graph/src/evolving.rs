//! The evolving-graph model `G = {G_t}_{t=1..T}`.
//!
//! The paper models a dynamic network as a sequence of snapshots sharing one
//! vertex set, with consecutive snapshots related by edge insertions `E+`
//! and deletions `E-`. Storing `T` full snapshots would be wasteful and —
//! more importantly — would hide the deltas the incremental algorithm feeds
//! on, so an [`EvolvingGraph`] is the initial snapshot plus `T-1` batches.

use std::sync::Arc;

use crate::{CsrGraph, EdgeBatch, Graph, GraphError, VertexId};

/// An evolving graph: snapshot `G_1` plus the per-step churn.
///
/// Snapshot indices are 1-based to match the paper (`t ∈ [1, T]`).
///
/// # Example
///
/// ```
/// use avt_graph::{EvolvingGraph, EdgeBatch, Graph};
///
/// let g1 = Graph::from_edges(4, [(0, 1), (1, 2)]).unwrap();
/// let mut eg = EvolvingGraph::new(g1);
/// eg.push_batch(EdgeBatch::from_pairs([(2, 3)], [(0, 1)]));
/// assert_eq!(eg.num_snapshots(), 2);
/// let g2 = eg.snapshot(2).unwrap();
/// assert!(g2.has_edge(2, 3));
/// assert!(!g2.has_edge(0, 1));
/// ```
#[derive(Debug, Clone)]
pub struct EvolvingGraph {
    initial: Graph,
    batches: Vec<EdgeBatch>,
}

impl EvolvingGraph {
    /// Wrap a single snapshot (T = 1).
    pub fn new(initial: Graph) -> Self {
        EvolvingGraph { initial, batches: Vec::new() }
    }

    /// Build from an initial snapshot and pre-computed batches.
    pub fn with_batches(initial: Graph, batches: Vec<EdgeBatch>) -> Self {
        EvolvingGraph { initial, batches }
    }

    /// Append the churn producing snapshot `T+1`.
    pub fn push_batch(&mut self, batch: EdgeBatch) {
        self.batches.push(batch);
    }

    /// Number of snapshots `T`.
    pub fn num_snapshots(&self) -> usize {
        self.batches.len() + 1
    }

    /// Shared vertex-set size.
    pub fn num_vertices(&self) -> usize {
        self.initial.num_vertices()
    }

    /// The first snapshot `G_1`.
    pub fn initial(&self) -> &Graph {
        &self.initial
    }

    /// The batch transforming `G_t` into `G_{t+1}` (`t` 1-based,
    /// `1 <= t < T`).
    pub fn batch(&self, t: usize) -> Option<&EdgeBatch> {
        if t == 0 {
            return None;
        }
        self.batches.get(t - 1)
    }

    /// All batches in order.
    pub fn batches(&self) -> &[EdgeBatch] {
        &self.batches
    }

    /// Materialize a *single* snapshot `G_t` (`t` 1-based) by replaying all
    /// batches from `G_1`. O(m + total churn up to t) — calling this in a
    /// loop over `t` is quadratic; iterate [`Self::frames`] (immutable CSR
    /// frames, each materialized once, incrementally) instead.
    pub fn snapshot(&self, t: usize) -> Result<Graph, GraphError> {
        if t == 0 || t > self.num_snapshots() {
            return Err(GraphError::Parse {
                line: 0,
                message: format!("snapshot index {t} out of range 1..={}", self.num_snapshots()),
            });
        }
        let mut g = self.initial.clone();
        for batch in &self.batches[..t - 1] {
            g.apply_batch(batch)?;
        }
        Ok(g)
    }

    /// Iterate over snapshots `G_1..G_T` as immutable [`CsrGraph`] frames,
    /// each materialized exactly once: frame `t+1` is derived from frame
    /// `t` via [`CsrGraph::apply_batch`], so the whole walk costs
    /// O(T·(n + m)) array merges instead of the O(T²·churn) a
    /// [`Self::snapshot`]-in-a-loop pays. This is the substrate the
    /// per-snapshot analysis algorithms consume.
    ///
    /// # Example
    ///
    /// ```
    /// use avt_graph::{EdgeBatch, EvolvingGraph, Graph};
    ///
    /// let g1 = Graph::from_edges(3, [(0, 1)]).unwrap();
    /// let mut eg = EvolvingGraph::new(g1);
    /// eg.push_batch(EdgeBatch::from_pairs([(1, 2)], []));
    /// let edge_counts: Vec<_> = eg.frames().map(|(t, f)| (t, f.num_edges())).collect();
    /// assert_eq!(edge_counts, vec![(1, 1), (2, 2)]);
    /// ```
    pub fn frames(&self) -> FrameIter<'_> {
        FrameIter { evolving: self, current: None, next_t: 1 }
    }

    /// Like [`Self::frames`], but yields each frame behind an [`Arc`] so it
    /// can outlive the iterator (and the thread that materialized it). This
    /// is the substrate the pipelined execution engine consumes: a producer
    /// walks this iterator in `t`-order — the frame chain is inherently
    /// sequential, each frame derived from its predecessor via
    /// [`CsrGraph::apply_batch`] — and hands the completed `Arc` frames to
    /// worker threads that solve snapshots concurrently. Because
    /// [`CsrGraph::apply_batch`] is functional (`&self -> CsrGraph`), the
    /// walk needs *no* per-step deep clone at all, unlike [`Self::frames`]
    /// which clones every non-final frame to keep deriving.
    ///
    /// # Example
    ///
    /// ```
    /// use avt_graph::{EdgeBatch, EvolvingGraph, Graph};
    ///
    /// let g1 = Graph::from_edges(3, [(0, 1)]).unwrap();
    /// let mut eg = EvolvingGraph::new(g1);
    /// eg.push_batch(EdgeBatch::from_pairs([(1, 2)], []));
    /// let frames: Vec<_> = eg.frames_arc().collect();
    /// assert_eq!(frames.len(), 2);
    /// assert_eq!(frames[1].1.num_edges(), 2); // Arc<CsrGraph>
    /// ```
    pub fn frames_arc(&self) -> ArcFrameIter<'_> {
        ArcFrameIter { evolving: self, current: None, next_t: 1 }
    }

    /// Truncate to the first `t` snapshots (used by the `T`-sweep
    /// experiments). No-op if `t >= T`.
    pub fn truncated(&self, t: usize) -> EvolvingGraph {
        let keep = t.saturating_sub(1).min(self.batches.len());
        EvolvingGraph { initial: self.initial.clone(), batches: self.batches[..keep].to_vec() }
    }

    /// Total churn volume across all batches (|E+| + |E-| summed).
    pub fn total_churn(&self) -> usize {
        self.batches.iter().map(EdgeBatch::len).sum()
    }

    /// Validate that every batch applies cleanly, returning the final
    /// snapshot. O(total churn).
    pub fn validate(&self) -> Result<Graph, GraphError> {
        self.snapshot(self.num_snapshots())
    }
}

/// Iterator over `(t, CsrGraph)` produced by [`EvolvingGraph::frames`].
///
/// Each step keeps one frame alive to derive the next from, so yielding
/// costs one contiguous-array clone (two `memcpy`s) on top of the batch
/// merge — still O(n + m) per frame with no replay from `G_1`.
pub struct FrameIter<'a> {
    evolving: &'a EvolvingGraph,
    current: Option<CsrGraph>,
    next_t: usize,
}

impl<'a> Iterator for FrameIter<'a> {
    type Item = (usize, CsrGraph);

    fn next(&mut self) -> Option<Self::Item> {
        let t = self.next_t;
        if t > self.evolving.num_snapshots() {
            return None;
        }
        let frame = match self.current.take() {
            None => CsrGraph::from_graph(&self.evolving.initial),
            Some(frame) => {
                let batch = self
                    .evolving
                    .batch(t - 1)
                    .expect("batch t-1 exists because t <= num_snapshots");
                frame.apply_batch(batch).expect("evolving graph batches must apply cleanly")
            }
        };
        // Keep a copy only while another frame will be derived from it;
        // the final frame is handed out without a wasted clone.
        self.current = (t < self.evolving.num_snapshots()).then(|| frame.clone());
        self.next_t += 1;
        Some((t, frame))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.evolving.num_snapshots() + 1 - self.next_t;
        (left, Some(left))
    }
}

impl<'a> ExactSizeIterator for FrameIter<'a> {}

/// Iterator over `(t, Arc<CsrGraph>)` produced by
/// [`EvolvingGraph::frames_arc`].
///
/// The iterator retains an `Arc` to the latest frame (to derive the next
/// from), so yielding is a reference-count bump — no array clone ever, not
/// even for intermediate frames.
pub struct ArcFrameIter<'a> {
    evolving: &'a EvolvingGraph,
    current: Option<Arc<CsrGraph>>,
    next_t: usize,
}

impl<'a> Iterator for ArcFrameIter<'a> {
    type Item = (usize, Arc<CsrGraph>);

    fn next(&mut self) -> Option<Self::Item> {
        let t = self.next_t;
        if t > self.evolving.num_snapshots() {
            return None;
        }
        let frame = match &self.current {
            None => Arc::new(CsrGraph::from_graph(&self.evolving.initial)),
            Some(prev) => {
                let batch = self
                    .evolving
                    .batch(t - 1)
                    .expect("batch t-1 exists because t <= num_snapshots");
                Arc::new(
                    prev.apply_batch(batch).expect("evolving graph batches must apply cleanly"),
                )
            }
        };
        self.current = Some(Arc::clone(&frame));
        self.next_t += 1;
        Some((t, frame))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.evolving.num_snapshots() + 1 - self.next_t;
        (left, Some(left))
    }
}

impl<'a> ExactSizeIterator for ArcFrameIter<'a> {}

/// Convenience: the set of vertices touched by a batch (endpoints of all
/// events), each reported exactly once, in ascending order. Candidate-
/// pruning consumers (IncAVT's impacted pool) iterate this directly, so the
/// sorted-and-deduplicated contract is load-bearing, not cosmetic.
pub fn touched_vertices(batch: &EdgeBatch) -> Vec<VertexId> {
    let mut out: Vec<VertexId> =
        batch.insertions.iter().chain(batch.deletions.iter()).flat_map(|e| e.endpoints()).collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EvolvingGraph {
        let g1 = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut eg = EvolvingGraph::new(g1);
        eg.push_batch(EdgeBatch::from_pairs([(3, 4)], []));
        eg.push_batch(EdgeBatch::from_pairs([(0, 4)], [(0, 1)]));
        eg
    }

    #[test]
    fn snapshot_count_and_vertices() {
        let eg = sample();
        assert_eq!(eg.num_snapshots(), 3);
        assert_eq!(eg.num_vertices(), 5);
        assert_eq!(eg.total_churn(), 3);
    }

    #[test]
    fn snapshot_materialization() {
        let eg = sample();
        let g1 = eg.snapshot(1).unwrap();
        assert_eq!(g1.num_edges(), 3);
        let g2 = eg.snapshot(2).unwrap();
        assert!(g2.has_edge(3, 4));
        assert_eq!(g2.num_edges(), 4);
        let g3 = eg.snapshot(3).unwrap();
        assert!(g3.has_edge(0, 4));
        assert!(!g3.has_edge(0, 1));
        assert_eq!(g3.num_edges(), 4);
    }

    #[test]
    fn snapshot_index_bounds() {
        let eg = sample();
        assert!(eg.snapshot(0).is_err());
        assert!(eg.snapshot(4).is_err());
    }

    #[test]
    fn frames_iterator_matches_materialization() {
        let eg = sample();
        let via_iter: Vec<(usize, usize)> = eg.frames().map(|(t, f)| (t, f.num_edges())).collect();
        assert_eq!(via_iter, vec![(1, 3), (2, 4), (3, 4)]);
    }

    #[test]
    fn truncation_keeps_prefix() {
        let eg = sample();
        let short = eg.truncated(2);
        assert_eq!(short.num_snapshots(), 2);
        assert!(short.snapshot(2).unwrap().has_edge(3, 4));
        // over-truncation is a no-op
        assert_eq!(eg.truncated(99).num_snapshots(), 3);
        // truncating to 1 keeps only the initial snapshot
        assert_eq!(eg.truncated(1).num_snapshots(), 1);
    }

    #[test]
    fn validate_detects_bad_batches() {
        let g1 = Graph::from_edges(3, [(0, 1)]).unwrap();
        let mut eg = EvolvingGraph::new(g1);
        eg.push_batch(EdgeBatch::from_pairs([(0, 1)], [])); // duplicate insert
        assert!(eg.validate().is_err());
    }

    #[test]
    fn touched_vertices_deduplicates() {
        let batch = EdgeBatch::from_pairs([(0, 1), (1, 2)], [(2, 3)]);
        assert_eq!(touched_vertices(&batch), vec![0, 1, 2, 3]);
    }

    #[test]
    fn touched_vertices_contract_each_vertex_once_sorted() {
        // A vertex hit by many events — across insertions AND deletions,
        // out of id order — must still appear exactly once, and the whole
        // output must be ascending.
        let batch = EdgeBatch::from_pairs([(9, 1), (1, 5), (5, 9)], [(1, 3), (9, 0)]);
        let touched = touched_vertices(&batch);
        assert_eq!(touched, vec![0, 1, 3, 5, 9]);
        assert!(touched.windows(2).all(|w| w[0] < w[1]), "strictly ascending, no repeats");
        // Empty batch: empty output.
        assert!(touched_vertices(&EdgeBatch::new()).is_empty());
    }

    #[test]
    fn frames_match_snapshot_materialization() {
        let eg = sample();
        let frames: Vec<(usize, crate::CsrGraph)> = eg.frames().collect();
        assert_eq!(frames.len(), 3);
        for (t, frame) in &frames {
            let reference = eg.snapshot(*t).unwrap();
            assert_eq!(frame.num_edges(), reference.num_edges(), "t={t}");
            assert!(frame.to_graph().is_isomorphic_identity(&reference), "t={t}");
        }
    }

    #[test]
    fn frames_arc_matches_frames() {
        let eg = sample();
        let arcs: Vec<(usize, Arc<CsrGraph>)> = eg.frames_arc().collect();
        assert_eq!(arcs.len(), 3);
        for ((at, af), (ft, ff)) in arcs.iter().zip(eg.frames()) {
            assert_eq!(*at, ft);
            assert_eq!(**af, ff, "t={ft}");
        }
        // Frames outlive the iterator; a held Arc stays valid and sendable.
        let (_, last) = eg.frames_arc().last().unwrap();
        let handle = std::thread::spawn(move || last.num_edges());
        assert_eq!(handle.join().unwrap(), 4);
    }

    #[test]
    fn frames_arc_is_exact_size() {
        let eg = sample();
        let mut it = eg.frames_arc();
        assert_eq!(it.len(), 3);
        it.next();
        assert_eq!(it.len(), 2);
        assert_eq!(it.count(), 2);
    }

    #[test]
    fn frames_is_exact_size() {
        let eg = sample();
        let mut it = eg.frames();
        assert_eq!(it.len(), 3);
        it.next();
        assert_eq!(it.len(), 2);
        assert_eq!(it.count(), 2);
    }
}
