//! End-to-end exercise of the `proptest!` macro surface the workspace
//! uses: config, tuple patterns, flat-mapped strategies, collections,
//! assumes, early `return Ok(())`, and — crucially — that violated
//! properties actually fail.

use proptest::prelude::*;

fn dependent_pair(max: usize) -> impl Strategy<Value = (usize, Vec<u32>)> {
    (2..max).prop_flat_map(move |n| (Just(n), proptest::collection::vec(0..n as u32, 0..2 * n)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ranges_stay_in_bounds(x in 3usize..17, y in 0u64..5) {
        prop_assert!((3..17).contains(&x));
        prop_assert!(y < 5);
    }

    #[test]
    fn flat_mapped_values_are_consistent((n, items) in dependent_pair(30)) {
        prop_assert!((2..30).contains(&n));
        for &v in &items {
            prop_assert!((v as usize) < n, "element {} out of bounds for n = {}", v, n);
        }
    }

    #[test]
    fn assume_discards_without_failing(n in 0usize..10) {
        prop_assume!(n % 2 == 0);
        prop_assert_eq!(n % 2, 0);
    }

    #[test]
    fn early_ok_return_is_allowed(flag in any::<bool>(), n in 0u32..100) {
        if flag {
            return Ok(());
        }
        prop_assert_ne!(n, u32::MAX);
    }

    #[test]
    #[should_panic(expected = "case ")]
    fn violated_properties_fail(n in 0usize..1000) {
        // 32 cases over 0..1000 make a sub-500 draw overwhelmingly likely;
        // the runner must surface the prop_assert failure as a panic.
        prop_assert!(n >= 500);
    }
}

#[test]
fn case_budget_is_exhausted() {
    use std::cell::Cell;
    let count = Cell::new(0u32);
    proptest::test_runner::run(&ProptestConfig::with_cases(64), "budget_probe", |_| {
        count.set(count.get() + 1);
        Ok(())
    });
    assert_eq!(count.get(), 64);
}
