//! Case runner, configuration, and the error type the `prop_*` macros use.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// How a single generated test case failed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The input did not satisfy a `prop_assume!` precondition; the case is
    /// discarded without counting toward the case budget.
    Reject(String),
    /// A `prop_assert*!` failed: the property does not hold for this input.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Build a rejection.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum number of `prop_assume!` rejections tolerated before the
    /// test aborts as unable to generate valid inputs.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65_536 }
    }
}

/// Derive a deterministic per-test seed from the test name (FNV-1a), unless
/// `PROPTEST_SEED` overrides it for replaying a reported failure.
fn seed_for(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = s.trim().parse::<u64>() {
            return seed;
        }
    }
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Run `case` until `config.cases` successes, panicking on the first
/// failure with enough context to replay it.
pub fn run<F>(config: &ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut SmallRng) -> Result<(), TestCaseError>,
{
    let seed = seed_for(test_name);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut successes = 0u32;
    let mut rejects = 0u32;
    while successes < config.cases {
        match case(&mut rng) {
            Ok(()) => successes += 1,
            Err(TestCaseError::Reject(why)) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!(
                        "proptest {test_name}: too many input rejections ({rejects}); \
                         last precondition: {why}"
                    );
                }
            }
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "proptest {test_name}: case {} of {} failed (seed {seed}; \
                     rerun with PROPTEST_SEED={seed}):\n{message}",
                    successes + 1,
                    config.cases
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_the_requested_number_of_cases() {
        let mut count = 0u32;
        run(&ProptestConfig::with_cases(17), "counting", |_| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 17);
    }

    #[test]
    fn rejections_do_not_count_as_cases() {
        let mut calls = 0u32;
        run(&ProptestConfig::with_cases(5), "rejecting", |_| {
            calls += 1;
            if calls.is_multiple_of(2) {
                Err(TestCaseError::reject("every other"))
            } else {
                Ok(())
            }
        });
        assert!(calls >= 9);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_panic_with_message() {
        run(&ProptestConfig::with_cases(3), "failing", |_| Err(TestCaseError::fail("boom")));
    }

    #[test]
    #[should_panic(expected = "too many input rejections")]
    fn reject_storm_aborts() {
        let config = ProptestConfig { cases: 1, max_global_rejects: 10 };
        run(&config, "storm", |_| Err(TestCaseError::reject("always")));
    }
}
