//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use rand::rngs::SmallRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Strategy producing a `Vec` of values from an element strategy, with a
/// length drawn uniformly from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = if self.size.is_empty() { 0 } else { rng.gen_range(self.size.clone()) };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
