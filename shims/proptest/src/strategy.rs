//! The [`Strategy`] trait and the combinators the workspace uses.

use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::Rng;

/// A recipe for generating values of one type from a seeded RNG.
///
/// Unlike upstream proptest there is no value tree and no shrinking:
/// `new_value` draws a fresh value directly.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut SmallRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }

    /// Feed generated values into `f` to pick a dependent second strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn new_value(&self, rng: &mut SmallRng) -> T {
        (self.f)(self.base.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut SmallRng) -> Self::Value {
        (self.f)(self.base.new_value(rng)).new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);
