//! `any::<T>()` — canonical strategies for simple types.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore};

use crate::strategy::Strategy;

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value of this type.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut SmallRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut SmallRng) -> u16 {
        rng.next_u64() as u16
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut SmallRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut SmallRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut SmallRng) -> usize {
        rng.next_u64() as usize
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}
