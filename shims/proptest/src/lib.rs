//! Offline stand-in for the `proptest` property-testing crate.
//!
//! Implements the API subset the workspace's property suites use: the
//! [`proptest!`] macro, `prop_assert*!` / `prop_assume!`, the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`,
//! [`strategy::Just`], [`arbitrary::any`], [`collection::vec`], and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from upstream: failing inputs are **not shrunk** — the
//! failure message instead reports the per-test RNG seed, which can be
//! replayed with the `PROPTEST_SEED` environment variable.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Glob-importable re-exports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert a condition inside a property test, failing the current case
/// (with its reproduction seed) rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert two expressions are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), left, right, format!($($fmt)*)
        );
    }};
}

/// Assert two expressions are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}\n{}",
            stringify!($left), stringify!($right), left, format!($($fmt)*)
        );
    }};
}

/// Discard the current case (it does not count toward the case budget)
/// when a generated input fails a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)*),
            ));
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            $crate::test_runner::run(&config, stringify!($name), |__proptest_rng| {
                $(let $pat = $crate::strategy::Strategy::new_value(&($strategy), __proptest_rng);)*
                #[allow(clippy::redundant_closure_call)]
                let __proptest_outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                __proptest_outcome
            });
        }
    )*};
}
