//! Offline stand-in for the `rand` crate.
//!
//! Provides the exact API subset the workspace uses — `rngs::SmallRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and
//! float ranges, and [`Rng::gen_bool`] — backed by a SplitMix64 generator.
//! Deterministic per seed; the stream differs from upstream `SmallRng`.

use std::ops::{Range, RangeInclusive};

/// Types that can construct themselves from entropy or a seed.
pub trait SeedableRng: Sized {
    /// Create a generator from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// The core randomness source: a stream of uniform `u64`s.
pub trait RngCore {
    /// Return the next value of the underlying `u64` stream.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly from `range`. Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`. Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Map a raw `u64` to a float uniform in `[0, 1)` using the top 53 bits.
fn unit_f64(raw: u64) -> f64 {
    (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a value of type `T` can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(usize, u8, u16, u32, u64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic PRNG (SplitMix64).
    ///
    /// Not cryptographically secure; statistically solid for the graph
    /// generators and randomized tests in this workspace.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng { state }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&y));
            let f = rng.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }
}
