//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — with honest wall-clock
//! measurement and plain-text reporting instead of Criterion's statistical
//! analysis and HTML reports.
//!
//! Set `AVT_BENCH_SMOKE=1` to run every benchmark body exactly once (CI
//! smoke mode: catches harness rot without burning minutes).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to every benchmark function by the generated main.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, default_samples(), f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), samples: default_samples() }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples collected per benchmark.
    /// (Smoke mode still forces a single sample at run time.)
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run a benchmark within this group.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), self.samples, f);
        self
    }

    /// Run a parameterised benchmark within this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.label), self.samples, |b| f(b, input));
        self
    }

    /// Close the group. (Reporting is per-benchmark here, so this is a no-op.)
    pub fn finish(self) {}
}

/// Identifies one parameterised benchmark: a function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayable parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// Timer handed to each benchmark body; call [`Bencher::iter`] exactly once.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    requested: usize,
}

impl Bencher {
    /// Measure `f`, collecting one wall-clock sample per invocation.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up run (also the only run in smoke mode).
        let start = Instant::now();
        black_box(f());
        let warm = start.elapsed();
        if self.requested <= 1 {
            self.samples.push(warm);
            return;
        }
        for _ in 0..self.requested {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn smoke_mode() -> bool {
    std::env::var_os("AVT_BENCH_SMOKE").is_some_and(|v| v != "0" && !v.is_empty())
}

fn default_samples() -> usize {
    if smoke_mode() {
        1
    } else {
        10
    }
}

fn run_one<F>(label: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher =
        Bencher { samples: Vec::new(), requested: if smoke_mode() { 1 } else { samples } };
    f(&mut bencher);
    report(label, &bencher.samples);
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<60} (no samples: Bencher::iter never called)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    println!(
        "{label:<60} mean {:>12?}  min {:>12?}  max {:>12?}  ({} samples)",
        mean,
        min,
        max,
        samples.len()
    );
}

/// Bundle benchmark functions into a named group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Run every benchmark function registered in this group.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate a `main` that runs the given groups, mirroring
/// `criterion::criterion_main!`. Requires `harness = false` on the bench
/// target, exactly like upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        if smoke_mode() {
            // AVT_BENCH_SMOKE forces single-iteration runs process-wide;
            // the sample-count assertion below would fail spuriously.
            return;
        }
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-test");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls >= 3);
    }

    #[test]
    fn benchmark_id_formats_parameter() {
        let id = BenchmarkId::new("greedy", 42);
        assert_eq!(id.label, "greedy/42");
    }
}
