//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — with honest wall-clock
//! measurement and plain-text reporting instead of Criterion's statistical
//! analysis and HTML reports.
//!
//! Set `AVT_BENCH_SMOKE=1` to run every benchmark body exactly once (CI
//! smoke mode: catches harness rot without burning minutes).
//!
//! Besides the plain-text report, every run records each benchmark's
//! *median* wall-clock sample, and the generated `criterion_main!` writes
//! them as a flat `{"group/name": nanoseconds}` JSON map on exit — to
//! `$AVT_BENCH_JSON` when that is set, else to `BENCH_10.json` in the
//! working directory when smoke mode is on (so CI smoke runs always leave
//! an artifact). Bench binaries run sequentially under `cargo bench`, and
//! the writer merges into an existing file, so one artifact accumulates
//! every group.

use std::collections::BTreeMap;
use std::fmt::Display;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Medians recorded by [`report`], drained by [`write_bench_json`].
static RESULTS: Mutex<Vec<(String, u128)>> = Mutex::new(Vec::new());

pub use std::hint::black_box;

/// Entry point handed to every benchmark function by the generated main.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, default_samples(), f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), samples: default_samples() }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples collected per benchmark.
    /// (Smoke mode still forces a single sample at run time.)
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run a benchmark within this group.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), self.samples, f);
        self
    }

    /// Run a parameterised benchmark within this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.label), self.samples, |b| f(b, input));
        self
    }

    /// Close the group. (Reporting is per-benchmark here, so this is a no-op.)
    pub fn finish(self) {}
}

/// Identifies one parameterised benchmark: a function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayable parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// Timer handed to each benchmark body; call [`Bencher::iter`] exactly once.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    requested: usize,
}

impl Bencher {
    /// Measure `f`, collecting one wall-clock sample per invocation.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up run (also the only run in smoke mode).
        let start = Instant::now();
        black_box(f());
        let warm = start.elapsed();
        if self.requested <= 1 {
            self.samples.push(warm);
            return;
        }
        for _ in 0..self.requested {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn smoke_mode() -> bool {
    std::env::var_os("AVT_BENCH_SMOKE").is_some_and(|v| v != "0" && !v.is_empty())
}

fn default_samples() -> usize {
    if smoke_mode() {
        1
    } else {
        10
    }
}

fn run_one<F>(label: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher =
        Bencher { samples: Vec::new(), requested: if smoke_mode() { 1 } else { samples } };
    f(&mut bencher);
    report(label, &bencher.samples);
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<60} (no samples: Bencher::iter never called)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    let median = median_of(samples);
    println!(
        "{label:<60} median {:>12?}  mean {:>12?}  min {:>12?}  max {:>12?}  ({} samples)",
        median,
        mean,
        min,
        max,
        samples.len()
    );
    let mut results = RESULTS.lock().unwrap_or_else(|e| e.into_inner());
    results.push((label.to_string(), median.as_nanos()));
}

fn median_of(samples: &[Duration]) -> Duration {
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let mid = sorted.len() / 2;
    if sorted.len().is_multiple_of(2) {
        (sorted[mid - 1] + sorted[mid]) / 2
    } else {
        sorted[mid]
    }
}

/// Write every median recorded so far as a flat `{"label": nanoseconds}`
/// JSON map, merging into the file if it already exists (bench binaries
/// run one after another; each adds its groups to the same artifact).
///
/// Destination: `$AVT_BENCH_JSON` when set; else `BENCH_10.json` in the
/// working directory when `AVT_BENCH_SMOKE` is on; else nowhere (plain
/// `cargo bench` stays report-only). Called by the `criterion_main!`-
/// generated `main` after all groups finish.
pub fn write_bench_json() {
    let explicit = std::env::var_os("AVT_BENCH_JSON").filter(|v| !v.is_empty());
    let path = match (explicit, smoke_mode()) {
        (Some(p), _) => PathBuf::from(p),
        (None, true) => PathBuf::from("BENCH_10.json"),
        (None, false) => return,
    };
    let results = RESULTS.lock().unwrap_or_else(|e| e.into_inner());
    if results.is_empty() {
        return;
    }
    let mut merged = match std::fs::read_to_string(&path) {
        Ok(text) => parse_flat_json(&text),
        Err(_) => BTreeMap::new(),
    };
    for (label, ns) in results.iter() {
        merged.insert(label.clone(), *ns);
    }
    match std::fs::write(&path, render_flat_json(&merged)) {
        Ok(()) => println!("bench medians written to {}", path.display()),
        Err(e) => eprintln!("criterion shim: could not write {}: {e}", path.display()),
    }
}

/// Parse the flat map this shim writes. Labels are `group/name` strings
/// without quotes or backslashes, so a quote-to-quote scan is exact for
/// our own output (and harmlessly lossy on anything else).
fn parse_flat_json(text: &str) -> BTreeMap<String, u128> {
    let mut map = BTreeMap::new();
    let mut rest = text;
    while let Some(start) = rest.find('"') {
        rest = &rest[start + 1..];
        let Some(end) = rest.find('"') else { break };
        let key = rest[..end].to_string();
        rest = &rest[end + 1..];
        let Some(colon) = rest.find(':') else { break };
        let digits: String =
            rest[colon + 1..].trim_start().chars().take_while(char::is_ascii_digit).collect();
        rest = &rest[colon + 1..];
        if let Ok(ns) = digits.parse::<u128>() {
            map.insert(key, ns);
        }
    }
    map
}

fn render_flat_json(map: &BTreeMap<String, u128>) -> String {
    let mut out = String::from("{\n");
    for (i, (label, ns)) in map.iter().enumerate() {
        out.push_str(&format!("  \"{label}\": {ns}"));
        if i + 1 < map.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

/// Bundle benchmark functions into a named group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Run every benchmark function registered in this group.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate a `main` that runs the given groups, mirroring
/// `criterion::criterion_main!`. Requires `harness = false` on the bench
/// target, exactly like upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_bench_json();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        if smoke_mode() {
            // AVT_BENCH_SMOKE forces single-iteration runs process-wide;
            // the sample-count assertion below would fail spuriously.
            return;
        }
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-test");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls >= 3);
    }

    #[test]
    fn benchmark_id_formats_parameter() {
        let id = BenchmarkId::new("greedy", 42);
        assert_eq!(id.label, "greedy/42");
    }

    #[test]
    fn median_is_order_free() {
        let ms = |n| Duration::from_millis(n);
        assert_eq!(median_of(&[ms(9), ms(1), ms(5)]), ms(5));
        assert_eq!(median_of(&[ms(8), ms(2)]), ms(5));
        assert_eq!(median_of(&[ms(7)]), ms(7));
    }

    #[test]
    fn flat_json_round_trips_and_merges() {
        let mut map = BTreeMap::new();
        map.insert("kernels/peel/scalar".to_string(), 123_456u128);
        map.insert("kernels/peel/branchless".to_string(), 98_765u128);
        let text = render_flat_json(&map);
        assert_eq!(parse_flat_json(&text), map);
        assert_eq!(parse_flat_json(""), BTreeMap::new());
        assert_eq!(parse_flat_json("{}\n"), BTreeMap::new());
        // Merging overwrites stale entries and keeps foreign ones.
        let mut merged = parse_flat_json(&text);
        merged.insert("kernels/peel/scalar".to_string(), 1u128);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged["kernels/peel/scalar"], 1);
    }
}
